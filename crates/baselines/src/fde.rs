//! Stock Android full-disk encryption (§II-A): the no-deniability baseline.

use mobiceal::{EncryptionFooter, MobiCealError, FOOTER_BYTES};
use mobiceal_blockdev::{BlockDevice, BlockDeviceError, BlockIndex, SharedDevice};
use mobiceal_crypto::ChaCha20Rng;
use mobiceal_dm::{DmCrypt, DmLinear};
use mobiceal_sim::{CpuCostModel, SimClock};
use std::sync::Arc;

const HEADER_MAGIC: &[u8; 8] = b"FDEVOL01";

/// Android FDE: dm-crypt (AES-CBC-ESSIV) over the whole userdata partition,
/// master key wrapped by the password in the 16 KiB footer.
///
/// The unlocked volume inherits [`DmCrypt`]'s hot path: in-place sector
/// encryption and thread-sharded batched crypto, so FDE workloads pay no
/// per-sector allocation on vectored I/O. The footer rides one vectored
/// write on initialize and one vectored read on open, and the batched
/// volume path is pinned against the single-block loop (same medium, never
/// more charged time) by `tests/baseline_props.rs` alongside the other
/// baselines.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mobiceal_baselines::AndroidFde;
/// use mobiceal_blockdev::{BlockDevice, MemDisk};
/// use mobiceal_sim::SimClock;
///
/// let clock = SimClock::new();
/// let disk = Arc::new(MemDisk::new(1024, 4096, clock.clone()));
/// let fde = AndroidFde::initialize(disk, clock, "password", 1)?;
/// let vol = fde.unlock("password")?;
/// vol.write_block(0, &vec![5u8; 4096])?;
/// assert_eq!(vol.read_block(0)?[0], 5);
/// # Ok::<(), mobiceal::MobiCealError>(())
/// ```
pub struct AndroidFde {
    disk: SharedDevice,
    clock: SimClock,
    footer: EncryptionFooter,
    cpu: CpuCostModel,
    data_blocks: u64,
}

impl std::fmt::Debug for AndroidFde {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AndroidFde").field("data_blocks", &self.data_blocks).finish_non_exhaustive()
    }
}

impl AndroidFde {
    fn footer_geometry(disk: &dyn BlockDevice) -> (u64, u64) {
        let footer_blocks = (FOOTER_BYTES as u64).div_ceil(disk.block_size() as u64);
        (disk.num_blocks() - footer_blocks, footer_blocks)
    }

    /// Enables FDE on a device: generates the master key, writes the
    /// footer, and writes the volume header.
    ///
    /// # Errors
    ///
    /// Device errors; the disk must have room for the footer plus data.
    pub fn initialize(
        disk: SharedDevice,
        clock: SimClock,
        password: &str,
        seed: u64,
    ) -> Result<Self, MobiCealError> {
        let mut rng = ChaCha20Rng::from_u64_seed(seed);
        let (data_blocks, footer_blocks) = Self::footer_geometry(&disk);
        if data_blocks < 8 {
            return Err(MobiCealError::DiskTooSmall {
                required: footer_blocks + 8,
                available: disk.num_blocks(),
            });
        }
        let (footer, master) = EncryptionFooter::create(&mut rng, password, 64);
        // Write the footer region in one vectored write.
        let bytes = footer.to_bytes();
        let bs = disk.block_size();
        let blocks: Vec<Vec<u8>> = (0..footer_blocks)
            .map(|i| {
                let mut block = vec![0u8; bs];
                let lo = i as usize * bs;
                if lo < bytes.len() {
                    let hi = (lo + bs).min(bytes.len());
                    block[..hi - lo].copy_from_slice(&bytes[lo..hi]);
                }
                block
            })
            .collect();
        let writes: Vec<(u64, &[u8])> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (data_blocks + i as u64, b.as_slice()))
            .collect();
        disk.write_blocks(&writes)?;
        let cpu = CpuCostModel::nexus4();
        clock.advance(cpu.pbkdf2_cost());
        let fde = AndroidFde { disk, clock, footer, cpu, data_blocks };
        // Header in block 0 so unlock can verify the password.
        let crypt = fde.crypt_device(&master)?;
        crypt.write_block(0, &header_block(password, bs))?;
        let _ = master;
        Ok(fde)
    }

    /// Opens an FDE device previously initialized on `disk`.
    ///
    /// # Errors
    ///
    /// [`MobiCealError::NotInitialized`] without a valid footer.
    pub fn open(disk: SharedDevice, clock: SimClock) -> Result<Self, MobiCealError> {
        let (data_blocks, footer_blocks) = Self::footer_geometry(&disk);
        let indices: Vec<u64> = (0..footer_blocks).map(|i| data_blocks + i).collect();
        let mut bytes = Vec::with_capacity(footer_blocks as usize * disk.block_size());
        for block in disk.read_blocks(&indices)? {
            bytes.extend_from_slice(&block);
        }
        let footer = EncryptionFooter::from_bytes(&bytes)?;
        Ok(AndroidFde { disk, clock, footer, cpu: CpuCostModel::nexus4(), data_blocks })
    }

    fn crypt_device(&self, key: &[u8; 32]) -> Result<DmCrypt, MobiCealError> {
        let data: SharedDevice = Arc::new(DmLinear::new(self.disk.clone(), 0, self.data_blocks)?);
        Ok(DmCrypt::new_essiv(data, key).with_timing(self.clock.clone(), self.cpu.clone()))
    }

    /// Unlocks the volume with `password` (pre-boot authentication).
    ///
    /// # Errors
    ///
    /// [`MobiCealError::BadPassword`] if the password is wrong.
    pub fn unlock(&self, password: &str) -> Result<SharedDevice, MobiCealError> {
        let key = self.footer.derive_key(password);
        self.clock.advance(self.cpu.pbkdf2_cost());
        let crypt = self.crypt_device(&key)?;
        let header = crypt.read_block(0)?;
        if !mobiceal_crypto::ct_eq(&header, &header_block(password, self.disk.block_size())) {
            return Err(MobiCealError::BadPassword);
        }
        let inner: SharedDevice = Arc::new(crypt);
        Ok(Arc::new(OffsetDevice { inner, offset: 1, len: self.data_blocks - 1 }))
    }
}

fn header_block(password: &str, block_size: usize) -> Vec<u8> {
    let mut plain = vec![0u8; block_size];
    plain[..8].copy_from_slice(HEADER_MAGIC);
    let pwd = password.as_bytes();
    let len = pwd.len().min(255);
    plain[8] = len as u8;
    plain[9..9 + len].copy_from_slice(&pwd[..len]);
    plain
}

/// Exposes blocks `offset..offset+len` of a device as `0..len` (the mounted
/// view above the verification header).
struct OffsetDevice {
    inner: SharedDevice,
    offset: u64,
    len: u64,
}

impl BlockDevice for OffsetDevice {
    fn num_blocks(&self) -> u64 {
        self.len
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.check_index(index)?;
        self.inner.read_block(index + self.offset)
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.check_index(index)?;
        self.inner.write_block(index + self.offset, data)
    }

    /// Batched read: shifts the batch past the header and forwards it as
    /// one vectored read to the dm-crypt layer below.
    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        mobiceal_blockdev::read_blocks_remapped(&self.inner, indices, self.len, |i| i + self.offset)
    }

    /// Batched write: shifts the batch past the header and forwards it as
    /// one vectored write (prefix-then-error on a bad index, like the
    /// sequential loop).
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        mobiceal_blockdev::write_blocks_remapped(&self.inner, writes, self.len, |i| i + self.offset)
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.inner.flush()
    }

    fn host_queue_enter(&self) {
        self.inner.host_queue_enter();
    }

    fn host_queue_leave(&self) {
        self.inner.host_queue_leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;

    fn device(seed: u64) -> (Arc<MemDisk>, SimClock, AndroidFde) {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(1024, 4096, clock.clone()));
        let fde = AndroidFde::initialize(disk.clone(), clock.clone(), "pwd", seed).unwrap();
        (disk, clock, fde)
    }

    #[test]
    fn roundtrip_and_persistence() {
        let (disk, clock, fde) = device(1);
        let vol = fde.unlock("pwd").unwrap();
        vol.write_block(7, &vec![0x44; 4096]).unwrap();
        drop((vol, fde));
        let fde2 = AndroidFde::open(disk, clock).unwrap();
        let vol2 = fde2.unlock("pwd").unwrap();
        assert_eq!(vol2.read_block(7).unwrap(), vec![0x44; 4096]);
    }

    #[test]
    fn wrong_password_rejected() {
        let (_disk, _clock, fde) = device(2);
        assert!(matches!(fde.unlock("nope"), Err(MobiCealError::BadPassword)));
    }

    #[test]
    fn at_rest_bytes_are_ciphertext() {
        let (disk, _clock, fde) = device(3);
        let vol = fde.unlock("pwd").unwrap();
        vol.write_block(0, &vec![0u8; 4096]).unwrap();
        let snap = disk.snapshot();
        assert!(snap.block_entropy(1) > 7.0, "block at rest must look random");
    }

    #[test]
    fn open_blank_disk_fails() {
        let clock = SimClock::new();
        let disk: Arc<MemDisk> = Arc::new(MemDisk::new(64, 4096, clock.clone()));
        assert!(AndroidFde::open(disk, clock).is_err());
    }
}
