//! [`StateJournal`]: crash-safe state persistence for the baseline stores.
//!
//! The baselines keep their position maps in RAM (HIVE's is additionally
//! written through to its on-device map region). To make them remountable
//! and crash-recoverable, each store serializes its committed state as one
//! [`JournalRecord`] of [`DeltaOp`]s — the same checksummed record format
//! and [`TransactionManager`] append/replay machinery the thin pool's
//! metadata journal uses. Position maps ride [`DeltaOp::SetMapping`]
//! extents; scalar registers (log head, epoch, cursor) ride
//! [`DeltaOp::Register`].
//!
//! Layout on the dedicated metadata device: block 0 is a checksummed
//! header naming the committed transaction and its journal extent; the
//! rest is split into two shadow halves. A commit writes the full-state
//! record into the *inactive* half and then flips the header — the header
//! write is the commit point, so a power cut anywhere leaves the previous
//! committed state intact and replayable.

use mobiceal_blockdev::{BlockDevice, BlockDeviceError, SharedDevice};
use mobiceal_crypto::sha256;
use mobiceal_thinp::{DeltaOp, JournalConfig, JournalRecord, TransactionManager};

/// Magic prefix of the state-journal header block.
const HEADER_MAGIC: &[u8; 8] = b"MCBLJN01";

/// magic (8) + txid (8) + active (1) + used (8) + digest (32).
const HEADER_LEN: usize = 8 + 8 + 1 + 8 + 32;

/// A/B-buffered full-state journal on a dedicated metadata device.
pub struct StateJournal {
    meta: SharedDevice,
    halves: [TransactionManager; 2],
}

impl StateJournal {
    /// Wraps `meta` (header block + two shadow halves).
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::NoSpace`] if the device has fewer than 3 blocks
    /// or blocks too small for the header.
    pub fn new(meta: SharedDevice) -> Result<Self, BlockDeviceError> {
        let half_len = meta.num_blocks().saturating_sub(1) / 2;
        if half_len == 0 || meta.block_size() < HEADER_LEN {
            return Err(BlockDeviceError::NoSpace);
        }
        let halves = [
            TransactionManager::new(
                meta.clone(),
                JournalConfig { first_block: 1, blocks: half_len },
            ),
            TransactionManager::new(
                meta.clone(),
                JournalConfig { first_block: 1 + half_len, blocks: half_len },
            ),
        ];
        Ok(StateJournal { meta, halves })
    }

    fn header_digest(bytes: &[u8]) -> [u8; 32] {
        sha256(&bytes[..HEADER_LEN - 32])
    }

    /// Reads the header: `None` if the device is fresh (all-zero header).
    fn load_header(&self) -> Result<Option<(u64, usize, u64)>, BlockDeviceError> {
        let block = self.meta.read_block(0)?;
        if block.iter().all(|&b| b == 0) {
            return Ok(None);
        }
        let corrupt = |detail: &str| BlockDeviceError::CorruptMetadata { detail: detail.into() };
        if &block[..8] != HEADER_MAGIC {
            return Err(corrupt("bad state-journal magic"));
        }
        let digest: [u8; 32] = block[HEADER_LEN - 32..HEADER_LEN].try_into().unwrap();
        if Self::header_digest(&block) != digest {
            return Err(corrupt("state-journal header digest mismatch"));
        }
        let txid = u64::from_le_bytes(block[8..16].try_into().unwrap());
        let active = block[16] as usize;
        let used = u64::from_le_bytes(block[17..25].try_into().unwrap());
        if active > 1 || txid == 0 {
            return Err(corrupt("state-journal header out of range"));
        }
        Ok(Some((txid, active, used)))
    }

    /// Commits `ops` as the store's new full state. Returns the committed
    /// transaction id.
    ///
    /// The record lands in the inactive half and the header flips last, so
    /// a power cut at any write boundary preserves the previously
    /// committed state.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::NoSpace`] if the state does not fit in one
    /// half; device errors otherwise.
    pub fn commit(&self, ops: Vec<DeltaOp>) -> Result<u64, BlockDeviceError> {
        let (txid, active) = match self.load_header()? {
            Some((txid, active, _)) => (txid, active),
            None => (0, 1),
        };
        let target = 1 - active;
        let record = JournalRecord { seq: txid + 1, ops };
        let used = self.halves[target].append(0, &record)?;

        let mut block = vec![0u8; self.meta.block_size()];
        block[..8].copy_from_slice(HEADER_MAGIC);
        block[8..16].copy_from_slice(&(txid + 1).to_le_bytes());
        block[16] = target as u8;
        block[17..25].copy_from_slice(&used.to_le_bytes());
        let digest = Self::header_digest(&block);
        block[HEADER_LEN - 32..HEADER_LEN].copy_from_slice(&digest);
        self.meta.write_block(0, &block)?;
        self.meta.flush()?;
        Ok(txid + 1)
    }

    /// Loads the last committed state: `None` if nothing was ever
    /// committed.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::CorruptMetadata`] if the header or the
    /// committed record fails validation.
    pub fn load(&self) -> Result<Option<(u64, Vec<DeltaOp>)>, BlockDeviceError> {
        match self.load_header()? {
            None => Ok(None),
            Some((txid, active, used)) => {
                let mut records = self.halves[active].replay(used, txid, txid)?;
                let record = records.pop().ok_or_else(|| BlockDeviceError::CorruptMetadata {
                    detail: "state-journal record missing".into(),
                })?;
                Ok(Some((txid, record.ops)))
            }
        }
    }
}

/// Coalesces a `logical → Some(physical)` table into run-length
/// [`DeltaOp::SetMapping`] extents for volume id 0 — the shared shape of
/// every baseline's position map.
pub(crate) fn map_to_ops(map: &[Option<u64>], ops: &mut Vec<DeltaOp>) {
    let mut run: Option<(u64, u64, u64)> = None;
    for (l, slot) in map.iter().enumerate() {
        let l = l as u64;
        match (*slot, &mut run) {
            (Some(p), Some((vb, db, len))) if l == *vb + *len && p == *db + *len => *len += 1,
            (Some(p), _) => {
                if let Some((virt_begin, data_begin, len)) = run.take() {
                    ops.push(DeltaOp::SetMapping {
                        id: 0,
                        extent: mobiceal_thinp::Extent { virt_begin, data_begin, len },
                    });
                }
                run = Some((l, p, 1));
            }
            (None, _) => {
                if let Some((virt_begin, data_begin, len)) = run.take() {
                    ops.push(DeltaOp::SetMapping {
                        id: 0,
                        extent: mobiceal_thinp::Extent { virt_begin, data_begin, len },
                    });
                }
            }
        }
    }
    if let Some((virt_begin, data_begin, len)) = run {
        ops.push(DeltaOp::SetMapping {
            id: 0,
            extent: mobiceal_thinp::Extent { virt_begin, data_begin, len },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;
    use std::sync::Arc;

    fn journal(blocks: u64) -> (Arc<MemDisk>, StateJournal) {
        let disk = Arc::new(MemDisk::with_default_timing(blocks, 512));
        let j = StateJournal::new(disk.clone() as SharedDevice).unwrap();
        (disk, j)
    }

    fn regs(vals: &[(u32, u64)]) -> Vec<DeltaOp> {
        vals.iter().map(|&(key, value)| DeltaOp::Register { key, value }).collect()
    }

    #[test]
    fn fresh_device_loads_none() {
        let (_disk, j) = journal(9);
        assert_eq!(j.load().unwrap(), None);
    }

    #[test]
    fn commit_then_load_roundtrip() {
        let (_disk, j) = journal(9);
        assert_eq!(j.commit(regs(&[(0, 42), (1, 7)])).unwrap(), 1);
        let (txid, ops) = j.load().unwrap().unwrap();
        assert_eq!(txid, 1);
        assert_eq!(ops, regs(&[(0, 42), (1, 7)]));
        assert_eq!(j.commit(regs(&[(0, 43)])).unwrap(), 2);
        let (txid, ops) = j.load().unwrap().unwrap();
        assert_eq!(txid, 2);
        assert_eq!(ops, regs(&[(0, 43)]));
    }

    #[test]
    fn torn_record_without_header_flip_keeps_old_state() {
        let (disk, j) = journal(9);
        j.commit(regs(&[(0, 1)])).unwrap();
        j.commit(regs(&[(0, 2)])).unwrap();
        // A new commit would land in the inactive half; garbage there (a
        // torn record whose header flip never happened) must not matter.
        let active_first = { 1 + (disk.num_blocks() - 1) / 2 };
        for b in 1..disk.num_blocks() {
            let in_active = (active_first..active_first + 4).contains(&b);
            if !in_active {
                disk.write_block(b, &vec![0xFF; 512]).unwrap();
            }
        }
        let (txid, ops) = j.load().unwrap().unwrap();
        assert_eq!((txid, ops), (2, regs(&[(0, 2)])));
    }

    #[test]
    fn corrupt_header_is_detected() {
        let (disk, j) = journal(9);
        j.commit(regs(&[(0, 5)])).unwrap();
        let mut header = disk.read_block(0).unwrap();
        header[9] ^= 0x10; // inside txid
        disk.write_block(0, &header).unwrap();
        assert!(j.load().is_err());
    }

    #[test]
    fn oversized_state_reports_no_space() {
        let (_disk, j) = journal(3);
        let big = regs(&(0..200u32).map(|k| (k, k as u64)).collect::<Vec<_>>());
        assert!(matches!(j.commit(big), Err(BlockDeviceError::NoSpace)));
    }

    #[test]
    fn map_to_ops_coalesces_runs() {
        let map = [Some(10), Some(11), Some(12), None, Some(20), Some(30), Some(31)];
        let mut ops = Vec::new();
        map_to_ops(&map, &mut ops);
        let extents: Vec<(u64, u64, u64)> = ops
            .iter()
            .map(|op| match op {
                DeltaOp::SetMapping { extent, .. } => {
                    (extent.virt_begin, extent.data_begin, extent.len)
                }
                other => panic!("unexpected op {other:?}"),
            })
            .collect();
        assert_eq!(extents, vec![(0, 10, 3), (4, 20, 1), (5, 30, 2)]);
    }
}
