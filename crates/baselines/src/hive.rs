//! HIVE's write-only ORAM (Blass et al., CCS 2014) — the §VII-B comparator.
//!
//! HIVE hides *which* logical block a write touched by rewriting `k = 3`
//! uniformly random physical blocks per logical write over a 2× over-
//! provisioned device, going through a stash and a position map, and
//! syncing each operation. This gives genuine multi-snapshot security for
//! every single write — at the I/O cost Table I reports (≥ 99 % overhead on
//! the SSD testbed): each 4 KiB logical write becomes ~7 random 4 KiB
//! device operations plus a flush.
//!
//! Reads are direct through the position map (HIVE is a *write-only* ORAM;
//! read patterns are assumed invisible to the snapshot adversary).
//!
//! Every shuffle pass — one logical write or a whole `write_blocks` batch —
//! issues its device I/O *vectored*: one read batch (live slots plus the
//! position-map blocks it will rewrite) and one write batch (slot rewrites,
//! placements, noise, coalesced map blocks), followed by a single sync. The
//! decisions themselves are planned first and committed only after the write
//! batch lands, so a mid-batch device error never advances the position map
//! past what is actually on the medium (the stash retains every enqueued
//! write, so no data is lost and the whole batch can be retried).

use mobiceal_blockdev::{BlockDevice, BlockDeviceError, BlockIndex, SharedDevice};
use mobiceal_crypto::{Aes256, ChaCha20Rng, SectorCipher, Xts};
use mobiceal_sim::{CpuCostModel, SimClock, SimDuration};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};

const K: usize = 3;

struct HiveState {
    /// logical → physical of the current copy.
    position: Vec<Option<u64>>,
    /// physical → logical for live blocks.
    inverse: Vec<Option<u64>>,
    /// Writes not yet placed on the device.
    stash: VecDeque<(u64, Vec<u8>)>,
    rng: ChaCha20Rng,
    /// High-water mark of the stash (the bound HIVE proves is O(log N)).
    stash_peak: usize,
}

/// A write-only ORAM block device in the HIVE configuration.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mobiceal_baselines::HiveWoOram;
/// use mobiceal_blockdev::{BlockDevice, MemDisk};
/// use mobiceal_sim::SimClock;
///
/// let clock = SimClock::new();
/// let disk = Arc::new(MemDisk::new(600, 4096, clock.clone()));
/// let oram = HiveWoOram::new(disk, clock, 256, [7u8; 64], 1)?;
/// oram.write_block(3, &vec![9u8; 4096])?;
/// assert_eq!(oram.read_block(3)?, vec![9u8; 4096]);
/// # Ok::<(), mobiceal_blockdev::BlockDeviceError>(())
/// ```
pub struct HiveWoOram {
    dev: SharedDevice,
    clock: SimClock,
    cpu: CpuCostModel,
    cipher: Xts<Aes256>,
    n_logical: u64,
    n_physical: u64,
    /// Physical blocks after the data area holding the serialized position
    /// map (written through on every operation, as HIVE persists its map).
    map_region_start: u64,
    map_region_blocks: u64,
    state: Mutex<HiveState>,
}

impl std::fmt::Debug for HiveWoOram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HiveWoOram")
            .field("n_logical", &self.n_logical)
            .field("n_physical", &self.n_physical)
            .finish_non_exhaustive()
    }
}

impl HiveWoOram {
    /// Builds a WoORAM exposing `n_logical` blocks over `dev`.
    ///
    /// The device must hold `2 × n_logical` data blocks plus the position-
    /// map region.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::OutOfRange`] if the device is too small.
    pub fn new(
        dev: SharedDevice,
        clock: SimClock,
        n_logical: u64,
        key: [u8; 64],
        seed: u64,
    ) -> Result<Self, BlockDeviceError> {
        let n_physical = 2 * n_logical;
        let map_entries_per_block = dev.block_size() / 8;
        let map_region_blocks = n_logical.div_ceil(map_entries_per_block as u64);
        let required = n_physical + map_region_blocks;
        if dev.num_blocks() < required {
            return Err(BlockDeviceError::OutOfRange {
                index: required,
                num_blocks: dev.num_blocks(),
            });
        }
        let mut k1 = [0u8; 32];
        let mut k2 = [0u8; 32];
        k1.copy_from_slice(&key[..32]);
        k2.copy_from_slice(&key[32..]);
        Ok(HiveWoOram {
            dev,
            clock,
            cpu: CpuCostModel::nexus4(),
            cipher: Xts::new(Aes256::new(&k1), Aes256::new(&k2)),
            n_logical,
            n_physical,
            map_region_start: n_physical,
            map_region_blocks,
            state: Mutex::new(HiveState {
                position: vec![None; n_logical as usize],
                inverse: vec![None; n_physical as usize],
                stash: VecDeque::new(),
                rng: ChaCha20Rng::from_u64_seed(seed),
                stash_peak: 0,
            }),
        })
    }

    /// Largest stash occupancy seen (HIVE's correctness argument bounds
    /// this logarithmically; tests watch it).
    pub fn stash_peak(&self) -> usize {
        self.state.lock().stash_peak
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.state.lock().stash.len()
    }

    /// Blocks reserved for the persisted position map.
    pub fn map_region_blocks(&self) -> u64 {
        self.map_region_blocks
    }

    /// Remounts a WoORAM from the position map persisted in its on-device
    /// map region.
    ///
    /// HIVE does not ride the baseline [`crate::StateJournal`]: its map is
    /// already written through (and synced) as part of every shuffle pass,
    /// so the map region *is* the durable metadata. A remount is one
    /// vectored read of that region plus validation; a fresh (all-zero)
    /// device yields an empty store. The in-RAM stash is volatile by
    /// design — call [`HiveWoOram::commit`] before unmount to drain it.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::CorruptMetadata`] if an entry points outside the
    /// data area or two logical blocks claim the same physical slot.
    pub fn open(
        dev: SharedDevice,
        clock: SimClock,
        n_logical: u64,
        key: [u8; 64],
        seed: u64,
    ) -> Result<Self, BlockDeviceError> {
        let oram = Self::new(dev, clock, n_logical, key, seed)?;
        let entries_per_block = oram.dev.block_size() / 8;
        let blocks: Vec<u64> =
            (0..oram.map_region_blocks).map(|i| oram.map_region_start + i).collect();
        let bufs = oram.dev.read_blocks(&blocks)?;
        let corrupt = |detail: String| BlockDeviceError::CorruptMetadata { detail };
        let mut state = oram.state.lock();
        for (bi, buf) in bufs.iter().enumerate() {
            for i in 0..entries_per_block {
                let logical = bi * entries_per_block + i;
                if logical as u64 >= n_logical {
                    break;
                }
                let value = u64::from_le_bytes(buf[i * 8..(i + 1) * 8].try_into().unwrap());
                if value == 0 {
                    continue;
                }
                let p = value - 1;
                if p >= oram.n_physical {
                    return Err(corrupt(format!("hive map entry {logical} -> {p} out of range")));
                }
                if state.inverse[p as usize].is_some() {
                    return Err(corrupt(format!("hive physical slot {p} mapped twice")));
                }
                state.position[logical] = Some(p);
                state.inverse[p as usize] = Some(logical as u64);
            }
        }
        drop(state);
        Ok(oram)
    }

    /// Drains the stash onto the device: every pending write is placed in a
    /// uniformly random free slot, the touched map blocks are written
    /// through (coalesced), and the device is synced. After a successful
    /// commit the persisted map region fully describes the store, so
    /// [`HiveWoOram::open`] recovers every write.
    ///
    /// One vectored write carries all placements plus the map blocks; the
    /// in-memory state absorbs the placements only after the batch lands,
    /// so a mid-batch device error leaves the stash (and the committed map)
    /// untouched and the commit can be retried.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::NoSpace`] if no free slot exists for a pending
    /// write (impossible under 2× over-provisioning unless the device was
    /// corrupted); device errors otherwise.
    pub fn commit(&self) -> Result<(), BlockDeviceError> {
        fn planned_live(
            inverse: &[Option<u64>],
            position: &[Option<u64>],
            inv_delta: &HashMap<u64, Option<u64>>,
            pos_delta: &HashMap<u64, Option<u64>>,
            p: u64,
        ) -> bool {
            inv_delta
                .get(&p)
                .copied()
                .unwrap_or(inverse[p as usize])
                .filter(|&l| pos_delta.get(&l).copied().unwrap_or(position[l as usize]) == Some(p))
                .is_some()
        }

        let mut state = self.state.lock();
        let state = &mut *state;
        if state.stash.is_empty() {
            return self.dev.flush();
        }
        let entries_per_block = self.dev.block_size() / 8;
        let mut pos_delta: HashMap<u64, Option<u64>> = HashMap::new();
        let mut inv_delta: HashMap<u64, Option<u64>> = HashMap::new();
        let mut placements: Vec<(u64, Vec<u8>)> = Vec::with_capacity(state.stash.len());
        let mut touched: Vec<u64> = Vec::new();
        let mut cpu = SimDuration::ZERO;
        for (logical, data) in state.stash.iter() {
            // Uniformly random free slot: rejection-sample, falling back to
            // a scan if the RNG is persistently unlucky.
            let mut slot = None;
            for _ in 0..128 {
                let p = state.rng.next_below(self.n_physical);
                if !planned_live(&state.inverse, &state.position, &inv_delta, &pos_delta, p) {
                    slot = Some(p);
                    break;
                }
            }
            let slot = match slot {
                Some(p) => p,
                None => (0..self.n_physical)
                    .find(|&p| {
                        !planned_live(&state.inverse, &state.position, &inv_delta, &pos_delta, p)
                    })
                    .ok_or(BlockDeviceError::NoSpace)?,
            };
            cpu += self.cpu.aes_cost(data.len());
            if let Some(old) =
                pos_delta.get(logical).copied().unwrap_or(state.position[*logical as usize])
            {
                inv_delta.insert(old, None);
            }
            pos_delta.insert(*logical, Some(slot));
            inv_delta.insert(slot, Some(*logical));
            let mut ct = data.clone();
            self.cipher.encrypt_sector_in_place(slot, &mut ct);
            placements.push((slot, ct));
            touched.push(*logical);
        }
        let mut map_blocks: Vec<u64> =
            touched.iter().map(|&l| self.map_region_start + l / entries_per_block as u64).collect();
        map_blocks.sort_unstable();
        map_blocks.dedup();
        let mut payloads = placements;
        for &mb in &map_blocks {
            let logical = (mb - self.map_region_start) * entries_per_block as u64;
            payloads.push((mb, self.map_block_payload(&state.position, &pos_delta, logical)));
        }
        self.clock.advance(cpu);
        let batch: Vec<(u64, &[u8])> = payloads.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        // Commit-after-land: on a mid-batch error the landed prefix is
        // unreferenced ciphertext and the stash still holds everything.
        self.dev.write_blocks(&batch)?;
        for (l, v) in pos_delta {
            state.position[l as usize] = v;
        }
        for (p, v) in inv_delta {
            state.inverse[p as usize] = v;
        }
        state.stash.clear();
        self.dev.flush()
    }

    /// Serializes the map block holding `logical`'s entry: committed
    /// `position` entries overridden by this pass's planned `delta`.
    fn map_block_payload(
        &self,
        position: &[Option<u64>],
        delta: &HashMap<u64, Option<u64>>,
        logical: u64,
    ) -> Vec<u8> {
        let entries_per_block = self.dev.block_size() / 8;
        let base = (logical as usize / entries_per_block) * entries_per_block;
        let mut block = vec![0u8; self.dev.block_size()];
        for i in 0..entries_per_block {
            let l = base + i;
            let entry = if l < position.len() {
                delta.get(&(l as u64)).copied().unwrap_or(position[l])
            } else {
                None
            };
            let value = entry.map(|p| p + 1).unwrap_or(0);
            block[i * 8..(i + 1) * 8].copy_from_slice(&value.to_le_bytes());
        }
        block
    }

    /// One shuffle pass over `writes` — the whole batch rides a single
    /// eviction: each logical write still rewrites `k` uniformly random
    /// physical blocks (the decision sequence, RNG consumption and stash
    /// dynamics are exactly the single-block loop's), but the device sees
    /// one vectored read, one vectored write and one sync for the pass
    /// instead of ~2k single-block commands per logical write.
    ///
    /// Commit ordering (the fail-fast-with-prefix invariant): decisions are
    /// planned against sparse *overlays* of the position map, inverse map
    /// and stash (O(k·batch) state, not an O(N) copy); the in-memory state
    /// absorbs the overlays only after the write batch has landed. On a
    /// mid-batch device error the landed prefix is visible on the medium
    /// but the position map is not advanced past it — every write of the
    /// failed batch stays in the stash (read-your-writes keeps returning
    /// the newest data) and the batch can simply be retried.
    ///
    /// Position-map write-through is coalesced per pass: all touched
    /// entries that share a map block ride one read-modify-write of that
    /// block instead of one per entry.
    fn shuffle_pass(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        for &(index, data) in writes {
            self.check_index(index)?;
            self.check_buffer(data)?;
        }
        if writes.is_empty() {
            return Ok(());
        }
        let bs = self.dev.block_size();
        let entries_per_block = bs / 8;

        /// One planned slot write of the pass, in device order.
        enum Planned {
            /// Slot ends the pass holding encrypted live content — either a
            /// re-encrypt of what it already holds (read off the device
            /// unless this pass placed it) or a fresh stash placement; the
            /// plaintext lives in the `in_batch` overlay either way.
            Rewrite { slot: u64 },
            /// Free slot with an empty stash: fresh randomness.
            Noise { slot: u64, noise: Vec<u8> },
        }

        let mut state = self.state.lock();
        let state = &mut *state;
        // Planning overlays: logical → planned position, physical →
        // planned inverse entry. The planned stash is the committed one
        // with `pops_committed` entries consumed from the front, plus the
        // batch entries (pushed one by one, the first `pushed_consumed` of
        // them already placed).
        let mut pos_delta: HashMap<u64, Option<u64>> = HashMap::new();
        let mut inv_delta: HashMap<u64, Option<u64>> = HashMap::new();
        let mut pops_committed = 0usize;
        let mut pushed_consumed = 0usize;
        let mut planned_len = state.stash.len();
        let mut stash_peak = state.stash_peak;
        let mut plans: Vec<Planned> = Vec::new();
        // Plaintext a slot will hold after earlier writes of this pass.
        let mut in_batch: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut touched_logical: Vec<u64> = Vec::new();
        let mut cpu = SimDuration::ZERO;
        for wi in 0..writes.len() {
            // Batch entry `wi` enters the planned stash here (implicitly:
            // the pop logic below reads it straight from `writes`).
            planned_len += 1;
            stash_peak = stash_peak.max(planned_len);
            let slots: Vec<u64> = (0..K).map(|_| state.rng.next_below(self.n_physical)).collect();
            for p in slots {
                let live =
                    inv_delta.get(&p).copied().unwrap_or(state.inverse[p as usize]).filter(|&l| {
                        pos_delta.get(&l).copied().unwrap_or(state.position[l as usize]) == Some(p)
                    });
                match live {
                    Some(_) => {
                        // Live block: re-encrypt in place so the adversary
                        // sees it change regardless.
                        cpu += self.cpu.aes_cost(bs) * 2;
                        plans.push(Planned::Rewrite { slot: p });
                    }
                    None => {
                        // Pop the planned stash front: committed entries
                        // first, then this batch's entries in push order
                        // (only those pushed so far, i.e. up to `wi`).
                        let next = if pops_committed < state.stash.len() {
                            let (l, d) = &state.stash[pops_committed];
                            pops_committed += 1;
                            Some((*l, d.clone()))
                        } else if pushed_consumed <= wi {
                            let (l, d) = writes[pushed_consumed];
                            pushed_consumed += 1;
                            Some((l, d.to_vec()))
                        } else {
                            None
                        };
                        match next {
                            Some((l, d)) => {
                                planned_len -= 1;
                                cpu += self.cpu.aes_cost(d.len());
                                if let Some(old) =
                                    pos_delta.get(&l).copied().unwrap_or(state.position[l as usize])
                                {
                                    inv_delta.insert(old, None);
                                }
                                pos_delta.insert(l, Some(p));
                                inv_delta.insert(p, Some(l));
                                in_batch.insert(p, d);
                                touched_logical.push(l);
                                plans.push(Planned::Rewrite { slot: p });
                            }
                            None => {
                                let mut noise = vec![0u8; bs];
                                state.rng.fill_bytes(&mut noise);
                                cpu += self.cpu.rng_cost(bs);
                                plans.push(Planned::Noise { slot: p, noise });
                            }
                        }
                    }
                }
            }
        }

        // One vectored read: live slots whose content is still on the
        // device (deduplicated; slots this pass placed are already in the
        // overlay), plus the map blocks about to be rewritten (HIVE
        // persists the map read-modify-write).
        let mut read_slots: Vec<u64> = Vec::new();
        let mut read_index: HashMap<u64, usize> = HashMap::new();
        for plan in &plans {
            if let Planned::Rewrite { slot } = plan {
                if !in_batch.contains_key(slot) && !read_index.contains_key(slot) {
                    read_index.insert(*slot, read_slots.len());
                    read_slots.push(*slot);
                }
            }
        }
        let mut map_blocks: Vec<u64> = touched_logical
            .iter()
            .map(|&l| self.map_region_start + l / entries_per_block as u64)
            .collect();
        map_blocks.sort_unstable();
        map_blocks.dedup();
        let mut read_list = read_slots.clone();
        read_list.extend_from_slice(&map_blocks);
        let mut read_bufs = match self.dev.read_blocks(&read_list) {
            Ok(bufs) => bufs,
            Err(e) => {
                // Nothing committed; keep the enqueued writes in the stash
                // so no data is lost and the batch can be retried.
                state.stash.extend(writes.iter().map(|&(l, d)| (l, d.to_vec())));
                state.stash_peak = state.stash_peak.max(state.stash.len());
                return Err(e);
            }
        };
        for (slot, idx) in &read_index {
            // Each read buffer is consumed exactly once; take it by move.
            let mut buf = std::mem::take(&mut read_bufs[*idx]);
            self.cipher.decrypt_sector_in_place(*slot, &mut buf);
            in_batch.insert(*slot, buf);
        }

        // One vectored write: slot rewrites in decision order, then the
        // coalesced map blocks, serialized from the *planned* position map.
        let mut payloads: Vec<(u64, Vec<u8>)> = Vec::with_capacity(plans.len() + map_blocks.len());
        for plan in plans {
            match plan {
                Planned::Rewrite { slot } => {
                    let mut ct = in_batch[&slot].clone();
                    self.cipher.encrypt_sector_in_place(slot, &mut ct);
                    payloads.push((slot, ct));
                }
                Planned::Noise { slot, noise } => payloads.push((slot, noise)),
            }
        }
        for &mb in &map_blocks {
            let logical = (mb - self.map_region_start) * entries_per_block as u64;
            payloads.push((mb, self.map_block_payload(&state.position, &pos_delta, logical)));
        }
        self.clock.advance(cpu);
        let batch: Vec<(u64, &[u8])> = payloads.iter().map(|(b, d)| (*b, d.as_slice())).collect();
        if let Err(e) = self.dev.write_blocks(&batch) {
            // Landed prefix stays on the medium, but the position map must
            // not advance past it: commit nothing, retain the batch in the
            // stash (fresh copies still win reads).
            state.stash.extend(writes.iter().map(|&(l, d)| (l, d.to_vec())));
            state.stash_peak = state.stash_peak.max(state.stash.len());
            return Err(e);
        }
        // Absorb the overlays: consume the popped committed-stash prefix,
        // append the batch entries that were not placed, apply the map
        // deltas.
        state.stash.drain(..pops_committed);
        state.stash.extend(writes[pushed_consumed..].iter().map(|&(l, d)| (l, d.to_vec())));
        for (l, v) in pos_delta {
            state.position[l as usize] = v;
        }
        for (p, v) in inv_delta {
            state.inverse[p as usize] = v;
        }
        state.stash_peak = stash_peak;
        // HIVE syncs after every operation so a snapshot can land anywhere;
        // a batch is one operation, so it syncs once.
        self.dev.flush()
    }
}

impl BlockDevice for HiveWoOram {
    fn num_blocks(&self) -> u64 {
        self.n_logical
    }

    fn block_size(&self) -> usize {
        self.dev.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.check_index(index)?;
        // Stash first (freshest copy), then the mapped physical block.
        let state = self.state.lock();
        if let Some((_, data)) = state.stash.iter().rev().find(|(l, _)| *l == index) {
            return Ok(data.clone());
        }
        let pos = state.position[index as usize];
        drop(state);
        match pos {
            Some(p) => {
                let mut buf = self.dev.read_block(p)?;
                self.clock.advance(self.cpu.aes_cost(buf.len()));
                self.cipher.decrypt_sector_in_place(p, &mut buf);
                Ok(buf)
            }
            None => Ok(vec![0u8; self.dev.block_size()]),
        }
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.shuffle_pass(&[(index, data)])
    }

    /// Batched write: the whole batch rides **one** shuffle pass — one
    /// vectored read (live slots + map blocks), one vectored write (slot
    /// rewrites + coalesced map write-through) and one sync, with decisions
    /// identical to issuing the writes one by one (see
    /// [`HiveWoOram::shuffle_pass`] for the commit ordering on a mid-batch
    /// device error).
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        self.shuffle_pass(writes)
    }

    /// Batched read: resolves every index through the stash and position
    /// map, then fetches all mapped physical blocks in one vectored read
    /// (an out-of-range index fails after the valid prefix is served, like
    /// the sequential loop).
    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        let bad = indices.iter().position(|&i| i >= self.n_logical);
        let valid = &indices[..bad.unwrap_or(indices.len())];
        let state = self.state.lock();
        let mut out: Vec<Option<Vec<u8>>> = Vec::with_capacity(valid.len());
        let mut fetch: Vec<(usize, u64)> = Vec::new();
        for (i, &index) in valid.iter().enumerate() {
            if let Some((_, data)) = state.stash.iter().rev().find(|(l, _)| *l == index) {
                out.push(Some(data.clone()));
            } else {
                match state.position[index as usize] {
                    Some(p) => {
                        fetch.push((i, p));
                        out.push(None);
                    }
                    None => out.push(Some(vec![0u8; self.dev.block_size()])),
                }
            }
        }
        drop(state);
        let slots: Vec<u64> = fetch.iter().map(|&(_, p)| p).collect();
        let bufs = self.dev.read_blocks(&slots)?;
        for (&(i, p), mut buf) in fetch.iter().zip(bufs) {
            self.clock.advance(self.cpu.aes_cost(buf.len()));
            self.cipher.decrypt_sector_in_place(p, &mut buf);
            out[i] = Some(buf);
        }
        let resolved: Vec<Vec<u8>> = out.into_iter().map(|b| b.expect("resolved")).collect();
        match bad {
            Some(pos) => Err(BlockDeviceError::OutOfRange {
                index: indices[pos],
                num_blocks: self.n_logical,
            }),
            None => Ok(resolved),
        }
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.dev.flush()
    }

    fn host_queue_enter(&self) {
        self.dev.host_queue_enter();
    }

    fn host_queue_leave(&self) {
        self.dev.host_queue_leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;
    use std::sync::Arc;

    fn oram(seed: u64) -> (Arc<MemDisk>, HiveWoOram, SimClock) {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(600, 4096, clock.clone()));
        let oram = HiveWoOram::new(disk.clone(), clock.clone(), 256, [9u8; 64], seed).unwrap();
        (disk, oram, clock)
    }

    #[test]
    fn read_your_writes() {
        let (_disk, oram, _clock) = oram(1);
        // Churn, then write deterministic final values and verify the last
        // write to each logical block wins.
        for i in 0..50u64 {
            oram.write_block(i % 16, &vec![i as u8; 4096]).unwrap();
        }
        for l in 0..16u64 {
            oram.write_block(l, &vec![0xA0 + l as u8; 4096]).unwrap();
        }
        for l in 0..16u64 {
            assert_eq!(oram.read_block(l).unwrap(), vec![0xA0 + l as u8; 4096], "block {l}");
        }
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let (_disk, oram, _clock) = oram(2);
        assert_eq!(oram.read_block(200).unwrap(), vec![0u8; 4096]);
    }

    #[test]
    fn stash_stays_bounded() {
        let (_disk, oram, _clock) = oram(3);
        for i in 0..500u64 {
            oram.write_block(i % 256, &vec![1u8; 4096]).unwrap();
        }
        // With k=3 over a half-empty device, the stash drains fast; a peak
        // beyond ~32 would indicate a broken eviction loop.
        assert!(oram.stash_peak() <= 32, "stash peak {}", oram.stash_peak());
    }

    #[test]
    fn write_amplification_is_roughly_k() {
        let (disk, oram, _clock) = oram(4);
        disk.reset_stats();
        for i in 0..100u64 {
            oram.write_block(i, &vec![2u8; 4096]).unwrap();
        }
        let writes = disk.stats().total_writes();
        // k data writes plus map persistence per logical write.
        assert!(
            (300..=800).contains(&writes),
            "expected ~3-8x write amplification, got {writes} device writes for 100"
        );
    }

    #[test]
    fn snapshots_change_everywhere_not_just_at_data() {
        // The obliviousness property: physical write locations are uniform,
        // so repeated writes to ONE logical block touch many physical ones.
        let (disk, oram, _clock) = oram(5);
        let before = disk.snapshot();
        for _ in 0..60 {
            oram.write_block(7, &vec![3u8; 4096]).unwrap();
        }
        let after = disk.snapshot();
        let changed: Vec<u64> =
            before.changed_blocks(&after).into_iter().filter(|&b| b < 512).collect();
        assert!(
            changed.len() > 100,
            "60 writes to one block should scatter widely, changed {}",
            changed.len()
        );
    }

    #[test]
    fn rejects_undersized_device() {
        let clock = SimClock::new();
        let disk: SharedDevice = Arc::new(MemDisk::new(100, 4096, clock.clone()));
        assert!(HiveWoOram::new(disk, clock, 256, [0u8; 64], 0).is_err());
    }

    #[test]
    fn commit_drains_stash_and_open_recovers_every_write() {
        let (disk, oram, clock) = oram(7);
        for i in 0..80u64 {
            oram.write_block(i % 32, &vec![i as u8; 4096]).unwrap();
        }
        for l in 0..32u64 {
            oram.write_block(l, &vec![0xC0 + l as u8; 4096]).unwrap();
        }
        oram.commit().unwrap();
        assert_eq!(oram.stash_len(), 0, "commit must drain the stash");
        // Reads still serve the committed copies.
        for l in 0..32u64 {
            assert_eq!(oram.read_block(l).unwrap(), vec![0xC0 + l as u8; 4096], "block {l}");
        }
        // Remount from the persisted map region alone (different seed: the
        // RNG stream is not part of the durable state).
        let reopened = HiveWoOram::open(disk.clone(), clock.clone(), 256, [9u8; 64], 99).unwrap();
        for l in 0..32u64 {
            assert_eq!(reopened.read_block(l).unwrap(), vec![0xC0 + l as u8; 4096], "block {l}");
        }
        assert_eq!(reopened.read_block(200).unwrap(), vec![0u8; 4096]);
        // And the remounted store keeps working.
        reopened.write_block(5, &vec![0xDD; 4096]).unwrap();
        assert_eq!(reopened.read_block(5).unwrap(), vec![0xDD; 4096]);
    }

    #[test]
    fn open_on_fresh_device_is_empty() {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(600, 4096, clock.clone()));
        let oram = HiveWoOram::open(disk, clock, 256, [9u8; 64], 1).unwrap();
        assert_eq!(oram.read_block(0).unwrap(), vec![0u8; 4096]);
    }

    #[test]
    fn open_rejects_double_mapped_physical_slot() {
        let (disk, oram, clock) = oram(8);
        oram.write_block(0, &vec![1u8; 4096]).unwrap();
        oram.commit().unwrap();
        // Forge a map block claiming slot 3 for two logical blocks.
        let mut map = vec![0u8; 4096];
        map[0..8].copy_from_slice(&4u64.to_le_bytes()); // logical 0 -> slot 3
        map[8..16].copy_from_slice(&4u64.to_le_bytes()); // logical 1 -> slot 3
        disk.write_block(512, &map).unwrap();
        let err = HiveWoOram::open(disk, clock, 256, [9u8; 64], 1).unwrap_err();
        assert!(matches!(err, BlockDeviceError::CorruptMetadata { .. }), "{err:?}");
    }

    #[test]
    fn ciphertext_at_rest() {
        let (disk, oram, _clock) = oram(6);
        oram.write_block(0, &vec![0u8; 4096]).unwrap();
        let snap = disk.snapshot();
        for b in 0..512 {
            if !snap.is_zero_block(b) {
                assert!(snap.block_entropy(b) > 7.0, "block {b}");
            }
        }
    }
}
