//! HIVE's write-only ORAM (Blass et al., CCS 2014) — the §VII-B comparator.
//!
//! HIVE hides *which* logical block a write touched by rewriting `k = 3`
//! uniformly random physical blocks per logical write over a 2× over-
//! provisioned device, going through a stash and a position map, and
//! syncing each operation. This gives genuine multi-snapshot security for
//! every single write — at the I/O cost Table I reports (≥ 99 % overhead on
//! the SSD testbed): each 4 KiB logical write becomes ~7 random 4 KiB
//! device operations plus a flush.
//!
//! Reads are direct through the position map (HIVE is a *write-only* ORAM;
//! read patterns are assumed invisible to the snapshot adversary).

use mobiceal_blockdev::{BlockDevice, BlockDeviceError, BlockIndex, SharedDevice};
use mobiceal_crypto::{Aes256, ChaCha20Rng, SectorCipher, Xts};
use mobiceal_sim::{CpuCostModel, SimClock};
use parking_lot::Mutex;
use std::collections::VecDeque;

const K: usize = 3;

struct HiveState {
    /// logical → physical of the current copy.
    position: Vec<Option<u64>>,
    /// physical → logical for live blocks.
    inverse: Vec<Option<u64>>,
    /// Writes not yet placed on the device.
    stash: VecDeque<(u64, Vec<u8>)>,
    rng: ChaCha20Rng,
    /// High-water mark of the stash (the bound HIVE proves is O(log N)).
    stash_peak: usize,
}

/// A write-only ORAM block device in the HIVE configuration.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mobiceal_baselines::HiveWoOram;
/// use mobiceal_blockdev::{BlockDevice, MemDisk};
/// use mobiceal_sim::SimClock;
///
/// let clock = SimClock::new();
/// let disk = Arc::new(MemDisk::new(600, 4096, clock.clone()));
/// let oram = HiveWoOram::new(disk, clock, 256, [7u8; 64], 1)?;
/// oram.write_block(3, &vec![9u8; 4096])?;
/// assert_eq!(oram.read_block(3)?, vec![9u8; 4096]);
/// # Ok::<(), mobiceal_blockdev::BlockDeviceError>(())
/// ```
pub struct HiveWoOram {
    dev: SharedDevice,
    clock: SimClock,
    cpu: CpuCostModel,
    cipher: Xts<Aes256>,
    n_logical: u64,
    n_physical: u64,
    /// Physical blocks after the data area holding the serialized position
    /// map (written through on every operation, as HIVE persists its map).
    map_region_start: u64,
    map_region_blocks: u64,
    state: Mutex<HiveState>,
}

impl std::fmt::Debug for HiveWoOram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HiveWoOram")
            .field("n_logical", &self.n_logical)
            .field("n_physical", &self.n_physical)
            .finish_non_exhaustive()
    }
}

impl HiveWoOram {
    /// Builds a WoORAM exposing `n_logical` blocks over `dev`.
    ///
    /// The device must hold `2 × n_logical` data blocks plus the position-
    /// map region.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::OutOfRange`] if the device is too small.
    pub fn new(
        dev: SharedDevice,
        clock: SimClock,
        n_logical: u64,
        key: [u8; 64],
        seed: u64,
    ) -> Result<Self, BlockDeviceError> {
        let n_physical = 2 * n_logical;
        let map_entries_per_block = dev.block_size() / 8;
        let map_region_blocks = n_logical.div_ceil(map_entries_per_block as u64);
        let required = n_physical + map_region_blocks;
        if dev.num_blocks() < required {
            return Err(BlockDeviceError::OutOfRange {
                index: required,
                num_blocks: dev.num_blocks(),
            });
        }
        let mut k1 = [0u8; 32];
        let mut k2 = [0u8; 32];
        k1.copy_from_slice(&key[..32]);
        k2.copy_from_slice(&key[32..]);
        Ok(HiveWoOram {
            dev,
            clock,
            cpu: CpuCostModel::nexus4(),
            cipher: Xts::new(Aes256::new(&k1), Aes256::new(&k2)),
            n_logical,
            n_physical,
            map_region_start: n_physical,
            map_region_blocks,
            state: Mutex::new(HiveState {
                position: vec![None; n_logical as usize],
                inverse: vec![None; n_physical as usize],
                stash: VecDeque::new(),
                rng: ChaCha20Rng::from_u64_seed(seed),
                stash_peak: 0,
            }),
        })
    }

    /// Largest stash occupancy seen (HIVE's correctness argument bounds
    /// this logarithmically; tests watch it).
    pub fn stash_peak(&self) -> usize {
        self.state.lock().stash_peak
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.state.lock().stash.len()
    }

    /// Blocks reserved for the persisted position map.
    pub fn map_region_blocks(&self) -> u64 {
        self.map_region_blocks
    }

    fn persist_map_entry(&self, logical: u64) -> Result<(), BlockDeviceError> {
        // Write-through of the map block containing this entry.
        let entries_per_block = self.dev.block_size() / 8;
        let map_block = self.map_region_start + logical / entries_per_block as u64;
        let mut block = self.dev.read_block(map_block)?;
        let state = self.state.lock();
        let base = (logical as usize / entries_per_block) * entries_per_block;
        for i in 0..entries_per_block {
            let l = base + i;
            let value = if l < state.position.len() {
                state.position[l].map(|p| p + 1).unwrap_or(0)
            } else {
                0
            };
            block[i * 8..(i + 1) * 8].copy_from_slice(&value.to_le_bytes());
        }
        drop(state);
        self.dev.write_block(map_block, &block)
    }
}

impl BlockDevice for HiveWoOram {
    fn num_blocks(&self) -> u64 {
        self.n_logical
    }

    fn block_size(&self) -> usize {
        self.dev.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.check_index(index)?;
        // Stash first (freshest copy), then the mapped physical block.
        let state = self.state.lock();
        if let Some((_, data)) = state.stash.iter().rev().find(|(l, _)| *l == index) {
            return Ok(data.clone());
        }
        let pos = state.position[index as usize];
        drop(state);
        match pos {
            Some(p) => {
                let mut buf = self.dev.read_block(p)?;
                self.clock.advance(self.cpu.aes_cost(buf.len()));
                self.cipher.decrypt_sector_in_place(p, &mut buf);
                Ok(buf)
            }
            None => Ok(vec![0u8; self.dev.block_size()]),
        }
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.check_index(index)?;
        self.check_buffer(data)?;
        // Enqueue the write, then rewrite k uniformly random physical
        // blocks; free/stale slots absorb stashed writes.
        let slots: Vec<u64> = {
            let mut state = self.state.lock();
            state.stash.push_back((index, data.to_vec()));
            let peak = state.stash.len();
            state.stash_peak = state.stash_peak.max(peak);
            (0..K).map(|_| state.rng.next_below(self.n_physical)).collect()
        };
        let mut touched_logical: Vec<u64> = Vec::new();
        for p in slots {
            let live = {
                let state = self.state.lock();
                state.inverse[p as usize].filter(|&l| state.position[l as usize] == Some(p))
            };
            match live {
                Some(l) => {
                    // Live block: re-encrypt in place so the adversary sees
                    // it change regardless.
                    let mut buf = self.dev.read_block(p)?;
                    self.clock.advance(self.cpu.aes_cost(buf.len()) * 2);
                    self.cipher.decrypt_sector_in_place(p, &mut buf);
                    self.cipher.encrypt_sector_in_place(p, &mut buf);
                    self.dev.write_block(p, &buf)?;
                    let _ = l;
                }
                None => {
                    // Free or stale slot: place a stashed write if any,
                    // otherwise write fresh randomness.
                    let pending = {
                        let mut state = self.state.lock();
                        state.stash.pop_front()
                    };
                    match pending {
                        Some((l, mut d)) => {
                            self.clock.advance(self.cpu.aes_cost(d.len()));
                            self.cipher.encrypt_sector_in_place(p, &mut d);
                            self.dev.write_block(p, &d)?;
                            let mut state = self.state.lock();
                            if let Some(old) = state.position[l as usize] {
                                state.inverse[old as usize] = None;
                            }
                            state.position[l as usize] = Some(p);
                            state.inverse[p as usize] = Some(l);
                            touched_logical.push(l);
                        }
                        None => {
                            let mut noise = vec![0u8; self.dev.block_size()];
                            let mut state = self.state.lock();
                            state.rng.fill_bytes(&mut noise);
                            drop(state);
                            self.clock.advance(self.cpu.rng_cost(noise.len()));
                            self.dev.write_block(p, &noise)?;
                        }
                    }
                }
            }
        }
        for l in touched_logical {
            self.persist_map_entry(l)?;
        }
        // HIVE syncs after every operation so a snapshot can land anywhere.
        self.dev.flush()
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.dev.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;
    use std::sync::Arc;

    fn oram(seed: u64) -> (Arc<MemDisk>, HiveWoOram, SimClock) {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(600, 4096, clock.clone()));
        let oram = HiveWoOram::new(disk.clone(), clock.clone(), 256, [9u8; 64], seed).unwrap();
        (disk, oram, clock)
    }

    #[test]
    fn read_your_writes() {
        let (_disk, oram, _clock) = oram(1);
        // Churn, then write deterministic final values and verify the last
        // write to each logical block wins.
        for i in 0..50u64 {
            oram.write_block(i % 16, &vec![i as u8; 4096]).unwrap();
        }
        for l in 0..16u64 {
            oram.write_block(l, &vec![0xA0 + l as u8; 4096]).unwrap();
        }
        for l in 0..16u64 {
            assert_eq!(oram.read_block(l).unwrap(), vec![0xA0 + l as u8; 4096], "block {l}");
        }
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let (_disk, oram, _clock) = oram(2);
        assert_eq!(oram.read_block(200).unwrap(), vec![0u8; 4096]);
    }

    #[test]
    fn stash_stays_bounded() {
        let (_disk, oram, _clock) = oram(3);
        for i in 0..500u64 {
            oram.write_block(i % 256, &vec![1u8; 4096]).unwrap();
        }
        // With k=3 over a half-empty device, the stash drains fast; a peak
        // beyond ~32 would indicate a broken eviction loop.
        assert!(oram.stash_peak() <= 32, "stash peak {}", oram.stash_peak());
    }

    #[test]
    fn write_amplification_is_roughly_k() {
        let (disk, oram, _clock) = oram(4);
        disk.reset_stats();
        for i in 0..100u64 {
            oram.write_block(i, &vec![2u8; 4096]).unwrap();
        }
        let writes = disk.stats().total_writes();
        // k data writes plus map persistence per logical write.
        assert!(
            (300..=800).contains(&writes),
            "expected ~3-8x write amplification, got {writes} device writes for 100"
        );
    }

    #[test]
    fn snapshots_change_everywhere_not_just_at_data() {
        // The obliviousness property: physical write locations are uniform,
        // so repeated writes to ONE logical block touch many physical ones.
        let (disk, oram, _clock) = oram(5);
        let before = disk.snapshot();
        for _ in 0..60 {
            oram.write_block(7, &vec![3u8; 4096]).unwrap();
        }
        let after = disk.snapshot();
        let changed: Vec<u64> =
            before.changed_blocks(&after).into_iter().filter(|&b| b < 512).collect();
        assert!(
            changed.len() > 100,
            "60 writes to one block should scatter widely, changed {}",
            changed.len()
        );
    }

    #[test]
    fn rejects_undersized_device() {
        let clock = SimClock::new();
        let disk: SharedDevice = Arc::new(MemDisk::new(100, 4096, clock.clone()));
        assert!(HiveWoOram::new(disk, clock, 256, [0u8; 64], 0).is_err());
    }

    #[test]
    fn ciphertext_at_rest() {
        let (disk, oram, _clock) = oram(6);
        oram.write_block(0, &vec![0u8; 4096]).unwrap();
        let snap = disk.snapshot();
        for b in 0..512 {
            if !snap.is_zero_block(b) {
                assert!(snap.block_entropy(b) > 7.0, "block {b}");
            }
        }
    }
}
