//! Security-game adapters: MobiCeal and the baselines as [`GameWorld`]s.
//!
//! These wire real storage stacks into the empirical §III-C game run by
//! [`mobiceal_adversary::run_distinguisher_game`]. Each world builds a
//! fresh device per round; the `with_hidden` flag decides whether a hidden
//! volume exists and receives writes (`Σ0`) or not (`Σ1`).
//!
//! Each game event forwards its blocks as **one** `write_blocks` batch (or
//! one [`MobiPluto::hidden_write_blocks`] extent), so per-command
//! amortization survives every stack end-to-end — the baselines are
//! measured with the same vectored discipline MobiCeal gets, not
//! handicapped to single-block commands.

use mobiceal::{MobiCeal, MobiCealConfig, UnlockedVolume};
use mobiceal_adversary::{GameWorld, Observation};
use mobiceal_blockdev::{BlockDevice, MemDisk};
use mobiceal_crypto::ChaCha20Rng;
use mobiceal_sim::SimClock;
use std::sync::Arc;

use crate::mobipluto::MobiPluto;

/// Disk geometry shared by the game worlds.
pub const WORLD_DISK_BLOCKS: u64 = 4096;
/// Block size shared by the game worlds.
pub const WORLD_BLOCK_SIZE: usize = 4096;

/// Draws `blocks` fresh event payloads in the same per-block RNG order the
/// single-block loop used, so game traces are bit-identical to PR 3's.
fn next_payloads(rng: &mut ChaCha20Rng, blocks: u64) -> Vec<Vec<u8>> {
    (0..blocks)
        .map(|_| {
            let mut buf = vec![0u8; WORLD_BLOCK_SIZE];
            rng.fill_bytes(&mut buf);
            buf
        })
        .collect()
}

fn fast_config() -> MobiCealConfig {
    MobiCealConfig {
        num_volumes: 6,
        pbkdf2_iterations: 4,
        metadata_blocks: 64,
        ..MobiCealConfig::default()
    }
}

/// MobiCeal in the game: public writes through the dummy-write hook, hidden
/// writes into the hidden volume (Σ0 only).
pub struct MobiCealWorld {
    disk: Arc<MemDisk>,
    mc: MobiCeal,
    public: UnlockedVolume,
    hidden: Option<UnlockedVolume>,
    pub_cursor: u64,
    hid_cursor: u64,
    payload: ChaCha20Rng,
}

impl MobiCealWorld {
    /// Builds a fresh world.
    ///
    /// # Panics
    ///
    /// Panics on initialization failure (the geometry is fixed and valid).
    pub fn build(seed: u64, with_hidden: bool) -> Self {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(WORLD_DISK_BLOCKS, WORLD_BLOCK_SIZE, clock.clone()));
        let hidden_pwds: &[&str] = if with_hidden { &["game-hidden"] } else { &[] };
        let mc = MobiCeal::initialize(
            disk.clone(),
            clock,
            fast_config(),
            "game-decoy",
            hidden_pwds,
            seed,
        )
        .expect("game world initialization");
        let public = mc.unlock_public("game-decoy").expect("decoy unlocks");
        let hidden = with_hidden.then(|| mc.unlock_hidden("game-hidden").expect("hidden unlocks"));
        MobiCealWorld {
            disk,
            mc,
            public,
            hidden,
            pub_cursor: 0,
            hid_cursor: 0,
            payload: ChaCha20Rng::from_u64_seed(seed ^ 0xDA7A),
        }
    }

    /// Where the pool data region starts on the raw disk (for configuring
    /// distinguishers).
    pub fn data_region_start() -> u64 {
        fast_config().metadata_blocks
    }

    /// Data-region length in blocks.
    pub fn data_region_blocks() -> u64 {
        let footer = (mobiceal::FOOTER_BYTES as u64).div_ceil(WORLD_BLOCK_SIZE as u64);
        WORLD_DISK_BLOCKS - fast_config().metadata_blocks - footer
    }

    /// The paper's λ (for the dummy-budget distinguisher).
    pub fn lambda() -> f64 {
        fast_config().lambda
    }
}

impl GameWorld for MobiCealWorld {
    fn public_write(&mut self, blocks: u64) {
        let payloads = next_payloads(&mut self.payload, blocks);
        let batch: Vec<(u64, &[u8])> = payloads
            .iter()
            .enumerate()
            .map(|(i, d)| ((self.pub_cursor + i as u64) % self.public.num_blocks(), d.as_slice()))
            .collect();
        self.public.write_blocks(&batch).expect("public write");
        self.pub_cursor += blocks;
    }

    fn hidden_write(&mut self, blocks: u64) {
        let hidden = self.hidden.as_ref().expect("hidden_write only in the hidden world");
        let payloads = next_payloads(&mut self.payload, blocks);
        let batch: Vec<(u64, &[u8])> = payloads
            .iter()
            .enumerate()
            .map(|(i, d)| ((self.hid_cursor + i as u64) % hidden.num_blocks(), d.as_slice()))
            .collect();
        hidden.write_blocks(&batch).expect("hidden write");
        self.hid_cursor += blocks;
    }

    fn observe(&self) -> Observation {
        Observation {
            snapshot: self.disk.snapshot(),
            metadata: Some(self.mc.metadata_view()),
            logs: Vec::new(),
        }
    }
}

/// MobiCeal under the §IV-B cover discipline: every hidden write is
/// followed by an approximately equal-sized public write, per the paper's
/// recommendation. The pattern restriction still holds: the cover writes
/// are ordinary public writes which in the Σ1 world occur as organic
/// traffic (the game harness only varies the *hidden* component, so we
/// inject the same cover volume in both worlds through `public_write`).
pub struct CoveredMobiCealWorld {
    inner: MobiCealWorld,
    cover: mobiceal::CoverDiscipline,
}

impl CoveredMobiCealWorld {
    /// Builds a fresh covered world.
    ///
    /// # Panics
    ///
    /// Panics on initialization failure (fixed, valid geometry).
    pub fn build(seed: u64, with_hidden: bool) -> Self {
        CoveredMobiCealWorld {
            inner: MobiCealWorld::build(seed, with_hidden),
            cover: mobiceal::CoverDiscipline::paper_recommendation(),
        }
    }
}

impl GameWorld for CoveredMobiCealWorld {
    fn public_write(&mut self, blocks: u64) {
        self.cover.record_public_write(blocks);
        self.inner.public_write(blocks);
    }

    fn hidden_write(&mut self, blocks: u64) {
        self.inner.hidden_write(blocks);
        self.cover.record_hidden_write(blocks);
        // Pay the cover debt immediately (the user stores an equal-sized
        // public file after the hidden file, §IV-B).
        let owed = self.cover.outstanding_cover();
        if owed > 0 {
            self.cover.record_public_write(owed);
            self.inner.public_write(owed);
        }
    }

    fn observe(&self) -> Observation {
        self.inner.observe()
    }
}

/// MobiPluto in the game: static randomness, sequential public allocation,
/// hidden writes straight into the "free" randomness (Σ0 only).
pub struct MobiPlutoWorld {
    disk: Arc<MemDisk>,
    mp: MobiPluto,
    public: mobiceal_blockdev::SharedDevice,
    pub_cursor: u64,
    payload: ChaCha20Rng,
}

impl MobiPlutoWorld {
    /// Builds a fresh world.
    ///
    /// # Panics
    ///
    /// Panics on initialization failure (fixed, valid geometry).
    pub fn build(seed: u64, with_hidden: bool) -> Self {
        let clock = SimClock::new();
        let disk = Arc::new(MemDisk::new(WORLD_DISK_BLOCKS, WORLD_BLOCK_SIZE, clock.clone()));
        let mp = MobiPluto::initialize(
            disk.clone(),
            clock,
            "game-decoy",
            with_hidden.then_some("game-hidden"),
            seed,
        )
        .expect("mobipluto init");
        let public = mp.unlock_public("game-decoy").expect("decoy unlocks");
        MobiPlutoWorld {
            disk,
            mp,
            public,
            pub_cursor: 1, // vblock 0 is the header
            payload: ChaCha20Rng::from_u64_seed(seed ^ 0xDA7A),
        }
    }

    /// Data-region start for distinguisher configuration.
    pub fn data_region_start(world: &Self) -> u64 {
        world.mp.data_region_start()
    }
}

impl GameWorld for MobiPlutoWorld {
    fn public_write(&mut self, blocks: u64) {
        let payloads = next_payloads(&mut self.payload, blocks);
        let half = self.public.num_blocks() / 2;
        let batch: Vec<(u64, &[u8])> = payloads
            .iter()
            .enumerate()
            .map(|(i, d)| (1 + (self.pub_cursor + i as u64) % half, d.as_slice()))
            .collect();
        self.public.write_blocks(&batch).expect("public write");
        self.pub_cursor += blocks;
    }

    fn hidden_write(&mut self, blocks: u64) {
        let payloads = next_payloads(&mut self.payload, blocks);
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        self.mp.hidden_write_blocks(&refs).expect("hidden write");
    }

    fn observe(&self) -> Observation {
        Observation {
            snapshot: self.disk.snapshot(),
            metadata: Some(self.mp.metadata_view()),
            logs: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_adversary::{run_distinguisher_game, ChangedFreeSpaceDistinguisher, GameConfig};

    fn small_game() -> GameConfig {
        GameConfig {
            rounds: 16,
            events_per_round: 6,
            public_blocks: (2, 8),
            hidden_blocks: (1, 6),
            hidden_event_prob: 0.6,
        }
    }

    #[test]
    fn free_space_diff_breaks_mobipluto_but_not_mobiceal() {
        let cfg = small_game();
        let d = ChangedFreeSpaceDistinguisher {
            public_volume: 1,
            data_region_start: 64,
            data_region_blocks: WORLD_DISK_BLOCKS - 64 - 4,
        };
        let pluto = run_distinguisher_game(MobiPlutoWorld::build, &d, &cfg, 42);
        assert!(pluto.accuracy > 0.85, "snapshot differencing must break MobiPluto: {pluto}");
        let ceal = run_distinguisher_game(MobiCealWorld::build, &d, &cfg, 42);
        assert!(ceal.advantage < 0.25, "MobiCeal should blind the same distinguisher: {ceal}");
    }
}
