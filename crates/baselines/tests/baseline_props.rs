//! Property tests of the baselines' vectored I/O paths, mirroring
//! `crates/blockdev/tests/device_props.rs` one stack up: for every baseline,
//! a `write_blocks` batch is observably equivalent to the single-block loop
//! — same final medium, same logical read-back — and charges **at most** the
//! loop's simulated time, with equality at batch depth 1 and, for the
//! stacks that add no per-pass device overhead of their own (DEFY's pure
//! appends, MobiPluto's hidden extent), exact equality under the
//! amortization-free `flat()` control profile. HIVE is strictly cheaper
//! batched even under `flat()`: one sync and one coalesced position-map
//! read-modify-write per pass replace one of each per logical write.

use mobiceal_baselines::{AndroidFde, DefyLite, HiveWoOram, MobiPluto};
use mobiceal_blockdev::{BlockDevice, MemDisk, SharedDevice};
use mobiceal_sim::{EmmcCostModel, SimClock};
use proptest::prelude::*;
use std::sync::Arc;

const BS: usize = 4096;

fn profiles() -> Vec<EmmcCostModel> {
    vec![EmmcCostModel::nexus4(), EmmcCostModel::ssd_840evo(), EmmcCostModel::flat(25_000)]
}

fn disk_on(model: &EmmcCostModel, blocks: u64) -> (Arc<MemDisk>, SimClock) {
    let clock = SimClock::new();
    let disk =
        Arc::new(MemDisk::with_cost_model(blocks, BS, clock.clone(), Arc::new(model.clone())));
    (disk, clock)
}

/// Materializes `(logical, fill)` pairs into full-block payloads.
fn payloads(writes: &[(u64, u8)]) -> Vec<(u64, Vec<u8>)> {
    writes.iter().map(|&(l, v)| (l, vec![v; BS])).collect()
}

fn as_batch(payloads: &[(u64, Vec<u8>)]) -> Vec<(u64, &[u8])> {
    payloads.iter().map(|(l, d)| (*l, d.as_slice())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// HIVE: one batched shuffle pass makes the same placement decisions as
    /// the equivalent sequence of single-write passes (same RNG stream,
    /// same stash dynamics), so the final medium is bit-identical; charged
    /// time never exceeds the loop's, on amortizing and flat profiles
    /// alike (the batch syncs once and coalesces map write-through).
    #[test]
    fn hive_batched_matches_singles_and_never_charges_more(
        writes in prop::collection::vec((0u64..256, any::<u8>()), 1..24),
        seed in 0u64..512,
    ) {
        for model in profiles() {
            let data = payloads(&writes);
            let (disk_b, clock_b) = disk_on(&model, 600);
            let oram_b =
                HiveWoOram::new(disk_b.clone(), clock_b.clone(), 256, [9u8; 64], seed).unwrap();
            oram_b.write_blocks(&as_batch(&data)).unwrap();
            let batched = clock_b.now();

            let (disk_s, clock_s) = disk_on(&model, 600);
            let oram_s =
                HiveWoOram::new(disk_s.clone(), clock_s.clone(), 256, [9u8; 64], seed).unwrap();
            for (l, d) in &data {
                oram_s.write_block(*l, d).unwrap();
            }
            let sequential = clock_s.now();

            prop_assert_eq!(
                disk_b.snapshot().as_bytes(),
                disk_s.snapshot().as_bytes(),
                "identical decisions must leave an identical medium ({:?})", model
            );
            prop_assert!(batched <= sequential,
                "batched {} > sequential {} ({:?})",
                batched.as_nanos(), sequential.as_nanos(), model);
            if writes.len() == 1 {
                prop_assert_eq!(batched, sequential, "a batch of one IS the single pass");
            } else {
                // n passes pay n syncs and n map write-throughs; the batch
                // pays one of each (sync time only shows on profiles that
                // charge flushes, map coalescing shows everywhere).
                prop_assert!(batched < sequential,
                    "a deep batch must be strictly cheaper ({:?})", model);
            }
            // Logical read-back agrees between the two drives.
            let indices: Vec<u64> = (0..256).collect();
            prop_assert_eq!(oram_b.read_blocks(&indices).unwrap(),
                indices.iter().map(|&l| oram_s.read_block(l).unwrap()).collect::<Vec<_>>());
        }
    }

    /// DEFY: a batched append run lands the same ciphertext at the same log
    /// positions as the loop (cleaning included — it triggers at the same
    /// append), charging at most the loop's time, with exact equality under
    /// the flat() control (appends are pure device writes plus per-block
    /// crypto: nothing per-pass remains to coalesce).
    #[test]
    fn defy_batched_matches_singles_with_flat_equality(
        writes in prop::collection::vec((0u64..64, any::<u8>()), 1..80),
    ) {
        for model in profiles() {
            let data = payloads(&writes);
            let (disk_b, clock_b) = disk_on(&model, 160);
            let defy_b = DefyLite::new(disk_b.clone(), clock_b.clone(), 64, [5u8; 32]).unwrap();
            defy_b.write_blocks(&as_batch(&data)).unwrap();
            let batched = clock_b.now();

            let (disk_s, clock_s) = disk_on(&model, 160);
            let defy_s = DefyLite::new(disk_s.clone(), clock_s.clone(), 64, [5u8; 32]).unwrap();
            for (l, d) in &data {
                defy_s.write_block(*l, d).unwrap();
            }
            let sequential = clock_s.now();

            prop_assert_eq!(disk_b.snapshot().as_bytes(), disk_s.snapshot().as_bytes());
            prop_assert_eq!(defy_b.cleanings(), defy_s.cleanings());
            prop_assert!(batched <= sequential);
            if model.cmd_setup_ns == 0 {
                prop_assert_eq!(batched, sequential,
                    "without amortization an append run charges the per-block sum");
            } else if writes.len() > 2 {
                prop_assert!(batched < sequential, "extents must amortize on {:?}", model);
            }
            let indices: Vec<u64> = (0..64).collect();
            prop_assert_eq!(defy_b.read_blocks(&indices).unwrap(),
                indices.iter().map(|&l| defy_s.read_block(l).unwrap()).collect::<Vec<_>>());
        }
    }

    /// MobiPluto: a hidden extent lands the same ciphertext as the
    /// single-block loop at the same cursor positions, charging at most the
    /// loop's time with flat() equality (the hidden path is raw sequential
    /// writes plus per-block AES).
    #[test]
    fn mobipluto_hidden_batch_matches_singles_with_flat_equality(
        fills in prop::collection::vec(any::<u8>(), 1..32),
        seed in 0u64..64,
    ) {
        for model in profiles() {
            let blocks: Vec<Vec<u8>> = fills.iter().map(|&v| vec![v; BS]).collect();
            let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();

            let (disk_b, clock_b) = disk_on(&model, 2048);
            let mp_b = MobiPluto::initialize(
                disk_b.clone() as SharedDevice, clock_b.clone(), "decoy", Some("h"), seed,
            ).unwrap();
            let t0 = clock_b.now();
            mp_b.hidden_write_blocks(&refs).unwrap();
            let batched = clock_b.now() - t0;

            let (disk_s, clock_s) = disk_on(&model, 2048);
            let mp_s = MobiPluto::initialize(
                disk_s.clone() as SharedDevice, clock_s.clone(), "decoy", Some("h"), seed,
            ).unwrap();
            let t1 = clock_s.now();
            for b in &blocks {
                mp_s.hidden_write(b).unwrap();
            }
            let sequential = clock_s.now() - t1;

            prop_assert_eq!(disk_b.snapshot().as_bytes(), disk_s.snapshot().as_bytes());
            prop_assert!(batched <= sequential);
            if model.cmd_setup_ns == 0 {
                prop_assert_eq!(batched, sequential);
            } else if fills.len() > 2 {
                prop_assert!(batched < sequential);
            }
        }
    }

    /// Android FDE: the unlocked volume forwards batches through dm-crypt;
    /// bytes match the loop and charged time never exceeds it (the crypt
    /// layer also amortizes its fixed per-call AES charge per batch).
    #[test]
    fn fde_batched_matches_singles(
        writes in prop::collection::vec((0u64..64, any::<u8>()), 1..32),
    ) {
        for model in profiles() {
            let data = payloads(&writes);
            let (disk_b, clock_b) = disk_on(&model, 1024);
            let fde_b = AndroidFde::initialize(
                disk_b.clone() as SharedDevice, clock_b.clone(), "pwd", 3,
            ).unwrap();
            let vol_b = fde_b.unlock("pwd").unwrap();
            let t0 = clock_b.now();
            vol_b.write_blocks(&as_batch(&data)).unwrap();
            let batched = clock_b.now() - t0;

            let (disk_s, clock_s) = disk_on(&model, 1024);
            let fde_s = AndroidFde::initialize(
                disk_s.clone() as SharedDevice, clock_s.clone(), "pwd", 3,
            ).unwrap();
            let vol_s = fde_s.unlock("pwd").unwrap();
            let t1 = clock_s.now();
            for (l, d) in &data {
                vol_s.write_block(*l, d).unwrap();
            }
            let sequential = clock_s.now() - t1;

            prop_assert_eq!(disk_b.snapshot().as_bytes(), disk_s.snapshot().as_bytes());
            prop_assert!(batched <= sequential);
            let indices: Vec<u64> = writes.iter().map(|&(l, _)| l).collect();
            prop_assert_eq!(vol_b.read_blocks(&indices).unwrap(),
                indices.iter().map(|&l| vol_s.read_block(l).unwrap()).collect::<Vec<_>>());
        }
    }
}
