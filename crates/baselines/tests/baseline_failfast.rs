//! The fail-fast-with-prefix invariant for the baselines' batched paths: on
//! a mid-batch device error, at most the landed prefix is visible on the
//! medium and no position map, log head or hidden cursor is advanced past
//! it. The naive "update map, then write the batch" ordering loses exactly
//! this — the map would point at blocks whose data never landed, turning a
//! device error into silent corruption.

use mobiceal_baselines::{DefyLite, HiveWoOram, MobiPluto};
use mobiceal_blockdev::{BlockDevice, FaultInjection, MemDisk, SharedDevice};
use mobiceal_sim::SimClock;
use std::sync::Arc;

const BS: usize = 4096;

/// HIVE: a failed shuffle batch advances neither the position map nor the
/// stash pops — every write of the batch stays in the stash, so reads keep
/// returning the newest data and the batch can simply be retried.
#[test]
fn hive_failed_batch_keeps_writes_in_the_stash_and_map_unadvanced() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(600, BS, clock.clone()));
    let oram = HiveWoOram::new(disk.clone(), clock, 256, [9u8; 64], 7).unwrap();
    oram.write_block(0, &vec![0x11; BS]).unwrap();
    oram.write_block(9, &vec![0x99; BS]).unwrap();

    // Kill the device a few operations into the next batch: the shuffle's
    // vectored write (~12 slot writes + map) dies mid-batch.
    let s = disk.stats();
    let ops_so_far = s.total_reads() + s.total_writes();
    disk.set_faults(FaultInjection { die_after_ops: Some(ops_so_far + 5), ..Default::default() });

    let payloads: Vec<(u64, Vec<u8>)> = (0..4u64).map(|i| (i, vec![0xA0 + i as u8; BS])).collect();
    let batch: Vec<(u64, &[u8])> = payloads.iter().map(|(l, d)| (*l, d.as_slice())).collect();
    let err = oram.write_blocks(&batch).unwrap_err();
    assert!(matches!(err, mobiceal_blockdev::BlockDeviceError::Io { .. }), "{err}");
    disk.set_faults(FaultInjection::default());

    // No data lost: the failed batch is retained in the stash, so every
    // logical block reads its newest value; untouched blocks are intact.
    assert!(oram.stash_len() >= 4, "failed batch must stay stashed: {}", oram.stash_len());
    for (l, d) in &payloads {
        assert_eq!(oram.read_block(*l).unwrap(), *d, "block {l} reads the enqueued value");
    }
    assert_eq!(oram.read_block(9).unwrap(), vec![0x99; BS], "unrelated block untouched");
    assert_eq!(oram.read_block(100).unwrap(), vec![0u8; BS], "never-written reads zero");

    // Retrying the batch succeeds and eventually drains the stash.
    oram.write_blocks(&batch).unwrap();
    for (l, d) in &payloads {
        assert_eq!(oram.read_block(*l).unwrap(), *d);
    }
    for i in 0..8u64 {
        oram.write_block(100 + i, &vec![1u8; BS]).unwrap();
    }
    assert!(oram.stash_len() <= 4, "stash drains after retries: {}", oram.stash_len());
}

/// DEFY: a mid-extent device error leaves log head and mapping exactly
/// where they were — the landed prefix sits unreferenced on the medium and
/// the whole run can be retried.
#[test]
fn defy_failed_extent_leaves_head_and_map_unadvanced() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(256, BS, clock.clone()));
    let defy = DefyLite::new(disk.clone(), clock, 64, [5u8; 32]).unwrap();
    defy.write_block(0, &vec![0x0A; BS]).unwrap(); // log position 0

    // Fail the third block of the next extent (log positions 1..=4).
    let mut faults = FaultInjection::default();
    faults.failing_writes.insert(3);
    disk.set_faults(faults);
    let payloads: Vec<(u64, Vec<u8>)> = (0..4u64).map(|i| (i, vec![0xB0 + i as u8; BS])).collect();
    let batch: Vec<(u64, &[u8])> = payloads.iter().map(|(l, d)| (*l, d.as_slice())).collect();
    let err = defy.write_blocks(&batch).unwrap_err();
    assert!(matches!(err, mobiceal_blockdev::BlockDeviceError::Io { .. }), "{err}");

    // Head and mapping not advanced: reads show the pre-batch state, never
    // garbage from the partially landed extent.
    assert_eq!(defy.read_block(0).unwrap(), vec![0x0A; BS], "pre-batch value preserved");
    for l in 1..4u64 {
        assert_eq!(defy.read_block(l).unwrap(), vec![0u8; BS], "block {l} still unwritten");
    }

    // Retrying the run lands it whole.
    disk.set_faults(FaultInjection::default());
    defy.write_blocks(&batch).unwrap();
    for (l, d) in &payloads {
        assert_eq!(defy.read_block(*l).unwrap(), *d, "block {l} lands on retry");
    }
}

/// MobiPluto: a failed hidden extent leaves the hidden cursor unmoved, so
/// the retry lands at the same password-derived offsets.
#[test]
fn mobipluto_failed_hidden_extent_leaves_cursor_unadvanced() {
    let clock = SimClock::new();
    let disk = Arc::new(MemDisk::new(2048, BS, clock.clone()));
    let mp =
        MobiPluto::initialize(disk.clone() as SharedDevice, clock, "decoy", Some("h"), 11).unwrap();

    // Locate the hidden region's first sector by diffing one probe write.
    let before = disk.snapshot();
    mp.hidden_write(&vec![0xC1; BS]).unwrap();
    let after = disk.snapshot();
    let changed = before.changed_blocks(&after);
    assert_eq!(changed.len(), 1);
    let first = changed[0];

    // Fail the second block of a three-block extent (sectors first+1..=3).
    let mut faults = FaultInjection::default();
    faults.failing_writes.insert(first + 2);
    disk.set_faults(faults);
    let blocks: Vec<Vec<u8>> = (0..3u8).map(|i| vec![0xD0 + i; BS]).collect();
    let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
    assert!(mp.hidden_write_blocks(&refs).is_err());
    disk.set_faults(FaultInjection::default());

    // The cursor did not advance: a retry (fresh payloads, so every sector
    // visibly changes — the failed attempt's landed prefix holds the old
    // ciphertext for the same sectors) targets exactly the same extent.
    let retry_blocks: Vec<Vec<u8>> = (0..3u8).map(|i| vec![0xE0 + i; BS]).collect();
    let retry_refs: Vec<&[u8]> = retry_blocks.iter().map(Vec::as_slice).collect();
    let before_retry = disk.snapshot();
    mp.hidden_write_blocks(&retry_refs).unwrap();
    let after_retry = disk.snapshot();
    let landed = before_retry.changed_blocks(&after_retry);
    assert_eq!(landed, vec![first + 1, first + 2, first + 3], "retry reuses the same extent");
}
