//! Userspace thin provisioning, modelled on the kernel's `dm-thin-pool`.
//!
//! Thin provisioning is the foundation MobiCeal builds on (§II-C, §V-A of
//! the paper): a *pool* combines a **data device** (block storage for all
//! volumes) and a **metadata device** (free-space bitmap + per-volume block
//! mappings), and exposes any number of *thin volumes* that only consume
//! physical blocks when written. The properties the paper leans on are all
//! reproduced here:
//!
//! 1. thin volumes occupy no space until written — hidden volumes are free
//!    to coexist with dummy volumes at zero cost;
//! 2. blocks are allocated on first write — which is the hook where
//!    MobiCeal inserts dummy writes;
//! 3. the shared free-space bitmap makes volume overlap impossible — public
//!    data can never overwrite hidden data;
//! 4. any block file system (or `dm-crypt` layer) can sit on a thin volume.
//!
//! The stock kernel allocator is **sequential**; MobiCeal's modification
//! replaces it with **random allocation** ([`RandomAllocator`], §IV-B).
//! Both are provided, since the paper's baselines (MobiPluto, the A-T-*
//! configurations of Fig. 4) use the sequential strategy.
//!
//! Metadata is persisted with A/B shadow areas and a superblock that is
//! written last, mirroring dm-thin's crash-consistent commit scheme: a torn
//! commit falls back to the previous transaction.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use mobiceal_blockdev::{BlockDevice, MemDisk};
//! use mobiceal_thinp::{AllocStrategy, PoolConfig, ThinPool};
//!
//! let data = Arc::new(MemDisk::with_default_timing(256, 4096));
//! let meta = Arc::new(MemDisk::with_default_timing(64, 4096));
//! let pool = ThinPool::create(data, meta, PoolConfig::new(4), AllocStrategy::Sequential)?;
//! let vol = pool.create_volume(0, 128)?;
//! vol.write_block(100, &vec![0xEE; 4096])?;
//! assert_eq!(vol.read_block(100)?[0], 0xEE);
//! assert_eq!(pool.allocated_blocks(), 1); // thin: only one physical block used
//! # Ok::<(), mobiceal_blockdev::BlockDeviceError>(())
//! ```

#![forbid(unsafe_code)]

mod allocator;
mod bitmap;
mod extent;
mod journal;
mod meta;
mod pool;

pub use allocator::{AllocStrategy, Allocator, RandomAllocator, SequentialAllocator};
pub use bitmap::Bitmap;
pub use extent::{Extent, ExtentMap};
pub use journal::{DeltaOp, JournalConfig, JournalRecord, TransactionManager};
pub use meta::{MetadataView, Superblock, VolumeMeta};
pub use pool::{PoolConfig, ThinPool, ThinVolume, VolumeId};
