//! The thin pool and its volumes.

use crate::allocator::{AllocStrategy, Allocator, RandomAllocator, SequentialAllocator};
use crate::bitmap::Bitmap;
use crate::meta::{MetadataView, Superblock, VolumeMeta};
use mobiceal_blockdev::{BlockDevice, BlockDeviceError, BlockIndex, SharedDevice};
use mobiceal_crypto::sha256;
use mobiceal_sim::{SimClock, SimDuration};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Identifier of a thin volume within its pool.
pub type VolumeId = u32;

/// Pool creation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Maximum number of volumes the pool will host (the paper's `n`).
    pub max_volumes: u32,
}

impl PoolConfig {
    /// Config with the given volume budget.
    pub fn new(max_volumes: u32) -> Self {
        PoolConfig { max_volumes }
    }
}

#[derive(Debug)]
struct VolumeState {
    virtual_blocks: u64,
    mappings: BTreeMap<u64, u64>,
}

struct PoolState {
    /// The bitmap as of the last commit. Blocks allocated in the open
    /// transaction live in `reserved` until commit folds them in — this is
    /// exactly the "transaction problem" setup of §V-A: the allocator works
    /// against the committed bitmap plus a record of in-flight allocations.
    bitmap: Bitmap,
    volumes: BTreeMap<VolumeId, VolumeState>,
    allocator: Box<dyn Allocator>,
    /// Blocks allocated since the last commit (the open transaction). The
    /// allocator must not hand these out again (§V-A's transaction fix),
    /// and a crash before commit releases them.
    reserved: HashSet<u64>,
    transaction_id: u64,
    active_half: u8,
    /// Optional per-read mapping-lookup cost. Real dm-thin walks a btree on
    /// the read path (the paper measures ~18 % sequential-read overhead
    /// from the thin layer, Fig. 4); the write path amortises its btree
    /// updates into the commit.
    read_overhead: Option<(SimClock, SimDuration)>,
}

impl PoolState {
    /// Committed bitmap with the open transaction folded in — the live
    /// occupancy an adversary reading the device right now would infer.
    fn live_bitmap(&self) -> Bitmap {
        let mut bm = self.bitmap.clone();
        for &b in &self.reserved {
            bm.set(b);
        }
        bm
    }
}

/// A thin-provisioning pool over a data device and a metadata device.
///
/// See the crate docs for the role this plays in MobiCeal. All mutation is
/// internally synchronised; clones of volume handles may be used from
/// multiple threads.
pub struct ThinPool {
    state: Arc<Mutex<PoolState>>,
    data: SharedDevice,
    meta: SharedDevice,
    config: PoolConfig,
}

impl std::fmt::Debug for ThinPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThinPool").field("config", &self.config).finish_non_exhaustive()
    }
}

fn make_allocator(strategy: AllocStrategy, seed: u64) -> Box<dyn Allocator> {
    match strategy {
        AllocStrategy::Sequential => Box::new(SequentialAllocator::new()),
        AllocStrategy::Random => Box::new(RandomAllocator::with_seed(seed)),
    }
}

impl ThinPool {
    /// Formats a new pool onto `data` + `meta` and commits an empty
    /// transaction.
    ///
    /// # Errors
    ///
    /// Fails if the metadata device is too small for the data device's
    /// bitmap and volume table, or on I/O error.
    pub fn create(
        data: SharedDevice,
        meta: SharedDevice,
        config: PoolConfig,
        strategy: AllocStrategy,
    ) -> Result<Self, BlockDeviceError> {
        Self::create_seeded(data, meta, config, strategy, 0x6d6f6263)
    }

    /// Like [`ThinPool::create`] with an explicit allocator seed, so
    /// experiments can vary the random allocation stream.
    pub fn create_seeded(
        data: SharedDevice,
        meta: SharedDevice,
        config: PoolConfig,
        strategy: AllocStrategy,
        seed: u64,
    ) -> Result<Self, BlockDeviceError> {
        let pool = ThinPool {
            state: Arc::new(Mutex::new(PoolState {
                bitmap: Bitmap::new(data.num_blocks()),
                volumes: BTreeMap::new(),
                allocator: make_allocator(strategy, seed),
                reserved: HashSet::new(),
                transaction_id: 0,
                active_half: 1, // first commit goes to half 0
                read_overhead: None,
            })),
            data,
            meta,
            config,
        };
        pool.commit()?;
        Ok(pool)
    }

    /// Opens an existing pool from its metadata device (e.g. after a reboot
    /// or crash). Uncommitted state from a previous run is — by design —
    /// absent.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::CorruptMetadata`] if no valid superblock/payload
    /// is found, or layer I/O errors.
    pub fn open(
        data: SharedDevice,
        meta: SharedDevice,
        config: PoolConfig,
        strategy: AllocStrategy,
        seed: u64,
    ) -> Result<Self, BlockDeviceError> {
        let sb = Superblock::decode(&meta.read_block(0)?)?;
        let view = Self::read_payload(&meta, &sb)?;
        if view.bitmap.len() != data.num_blocks() {
            return Err(BlockDeviceError::CorruptMetadata {
                detail: format!(
                    "bitmap covers {} blocks but data device has {}",
                    view.bitmap.len(),
                    data.num_blocks()
                ),
            });
        }
        let volumes = view
            .volumes
            .into_iter()
            .map(|(id, v)| {
                (id, VolumeState { virtual_blocks: v.virtual_blocks, mappings: v.mappings })
            })
            .collect();
        Ok(ThinPool {
            state: Arc::new(Mutex::new(PoolState {
                bitmap: view.bitmap,
                volumes,
                allocator: make_allocator(strategy, seed),
                reserved: HashSet::new(),
                transaction_id: sb.transaction_id,
                active_half: sb.active_half,
                read_overhead: None,
            })),
            data,
            meta,
            config,
        })
    }

    fn half_geometry(meta: &SharedDevice) -> (u64, u64) {
        // Block 0 is the superblock; the rest is split into two halves.
        let usable = meta.num_blocks() - 1;
        let half_len = usable / 2;
        (1, half_len)
    }

    fn read_payload(
        meta: &SharedDevice,
        sb: &Superblock,
    ) -> Result<MetadataView, BlockDeviceError> {
        let (first, half_len) = Self::half_geometry(meta);
        let bs = meta.block_size();
        let start = first + sb.active_half as u64 * half_len;
        let need_blocks = (sb.payload_len as usize).div_ceil(bs) as u64;
        if need_blocks > half_len {
            return Err(BlockDeviceError::CorruptMetadata {
                detail: "payload larger than shadow half".into(),
            });
        }
        let indices: Vec<u64> = (0..need_blocks).map(|i| start + i).collect();
        let blocks = meta.read_blocks(&indices)?;
        let mut payload = Vec::with_capacity(need_blocks as usize * bs);
        for block in blocks {
            payload.extend_from_slice(&block);
        }
        payload.truncate(sb.payload_len as usize);
        if sha256(&payload) != sb.payload_digest {
            return Err(BlockDeviceError::CorruptMetadata {
                detail: "payload digest mismatch".into(),
            });
        }
        MetadataView::from_bytes(&payload)
    }

    /// Persists all metadata crash-consistently and closes the open
    /// transaction.
    ///
    /// # Errors
    ///
    /// I/O errors from the metadata device; on failure the previous
    /// transaction remains intact.
    pub fn commit(&self) -> Result<(), BlockDeviceError> {
        let mut state = self.state.lock();
        let view = MetadataView {
            transaction_id: state.transaction_id + 1,
            bitmap: state.live_bitmap(),
            volumes: state
                .volumes
                .iter()
                .map(|(&id, v)| {
                    (
                        id,
                        VolumeMeta {
                            id,
                            virtual_blocks: v.virtual_blocks,
                            mappings: v.mappings.clone(),
                        },
                    )
                })
                .collect(),
        };
        let payload = view.to_bytes();
        let (first, half_len) = Self::half_geometry(&self.meta);
        let bs = self.meta.block_size();
        let target_half = 1 - state.active_half;
        let start = first + target_half as u64 * half_len;
        let need_blocks = payload.len().div_ceil(bs) as u64;
        if need_blocks > half_len {
            return Err(BlockDeviceError::NoSpace);
        }
        // One vectored write for the whole payload half instead of a write
        // per metadata block.
        let blocks: Vec<Vec<u8>> = (0..need_blocks)
            .map(|i| {
                let mut block = vec![0u8; bs];
                let lo = i as usize * bs;
                let hi = (lo + bs).min(payload.len());
                block[..hi - lo].copy_from_slice(&payload[lo..hi]);
                block
            })
            .collect();
        let writes: Vec<(BlockIndex, &[u8])> = blocks
            .iter()
            .enumerate()
            .map(|(i, block)| (start + i as u64, block.as_slice()))
            .collect();
        self.meta.write_blocks(&writes)?;
        self.meta.flush()?;
        // Superblock last: this is the commit point.
        let sb = Superblock {
            transaction_id: state.transaction_id + 1,
            active_half: target_half,
            payload_len: payload.len() as u64,
            payload_digest: sha256(&payload),
        };
        let mut sb_block = vec![0u8; bs];
        sb.encode_into(&mut sb_block);
        self.meta.write_block(0, &sb_block)?;
        self.meta.flush()?;
        state.transaction_id += 1;
        state.active_half = target_half;
        // Fold the open transaction into the committed bitmap.
        let reserved: Vec<u64> = state.reserved.drain().collect();
        for b in reserved {
            state.bitmap.set(b);
        }
        Ok(())
    }

    /// Creates a thin volume of `virtual_blocks` provisioned size.
    ///
    /// # Errors
    ///
    /// Fails if the id is taken, the pool's volume budget is exhausted, or
    /// the id is out of the configured range.
    pub fn create_volume(
        &self,
        id: VolumeId,
        virtual_blocks: u64,
    ) -> Result<ThinVolume, BlockDeviceError> {
        let mut state = self.state.lock();
        if state.volumes.len() as u32 >= self.config.max_volumes {
            return Err(BlockDeviceError::Unsupported {
                what: format!("pool limited to {} volumes", self.config.max_volumes),
            });
        }
        if state.volumes.contains_key(&id) {
            return Err(BlockDeviceError::Unsupported { what: format!("volume {id} exists") });
        }
        state.volumes.insert(id, VolumeState { virtual_blocks, mappings: BTreeMap::new() });
        drop(state);
        Ok(self.volume_handle(id, virtual_blocks))
    }

    /// Opens an existing volume.
    ///
    /// # Errors
    ///
    /// Fails if the volume does not exist.
    pub fn open_volume(&self, id: VolumeId) -> Result<ThinVolume, BlockDeviceError> {
        let state = self.state.lock();
        let vol = state
            .volumes
            .get(&id)
            .ok_or_else(|| BlockDeviceError::Unsupported { what: format!("no volume {id}") })?;
        let virtual_blocks = vol.virtual_blocks;
        drop(state);
        Ok(self.volume_handle(id, virtual_blocks))
    }

    /// Deletes a volume, releasing its physical blocks.
    ///
    /// # Errors
    ///
    /// Fails if the volume does not exist.
    pub fn delete_volume(&self, id: VolumeId) -> Result<(), BlockDeviceError> {
        let mut state = self.state.lock();
        let vol = state
            .volumes
            .remove(&id)
            .ok_or_else(|| BlockDeviceError::Unsupported { what: format!("no volume {id}") })?;
        let blocks: Vec<u64> = vol.mappings.values().copied().collect();
        for p in blocks {
            if !state.reserved.remove(&p) {
                state.bitmap.clear(p);
            }
        }
        Ok(())
    }

    /// Releases the physical block backing one virtual block of a volume
    /// (a discard/trim). No-op if unmapped. Used by MobiCeal's dummy-space
    /// garbage collection (§IV-D).
    ///
    /// # Errors
    ///
    /// Fails if the volume does not exist.
    pub fn discard(&self, id: VolumeId, vblock: u64) -> Result<(), BlockDeviceError> {
        let mut state = self.state.lock();
        let vol = state
            .volumes
            .get_mut(&id)
            .ok_or_else(|| BlockDeviceError::Unsupported { what: format!("no volume {id}") })?;
        if let Some(p) = vol.mappings.remove(&vblock) {
            if !state.reserved.remove(&p) {
                state.bitmap.clear(p);
            }
        }
        Ok(())
    }

    /// Total physically allocated blocks (committed + open transaction).
    pub fn allocated_blocks(&self) -> u64 {
        let state = self.state.lock();
        state.bitmap.allocated() + state.reserved.len() as u64
    }

    /// Free physical blocks.
    pub fn free_blocks(&self) -> u64 {
        let state = self.state.lock();
        state.bitmap.free() - state.reserved.len() as u64
    }

    /// The pool's volume budget.
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Charges `cost` on `clock` for every mapped volume read, modelling
    /// dm-thin's mapping-btree lookups on the read path.
    pub fn set_read_overhead(&self, clock: SimClock, cost: SimDuration) {
        self.state.lock().read_overhead = Some((clock, cost));
    }

    /// Data-device geometry: block size in bytes.
    pub fn block_size(&self) -> usize {
        self.data.block_size()
    }

    /// The decoded metadata exactly as an adversary with device access would
    /// recover it (current in-memory transaction).
    pub fn metadata_view(&self) -> MetadataView {
        let state = self.state.lock();
        MetadataView {
            transaction_id: state.transaction_id,
            bitmap: state.live_bitmap(),
            volumes: state
                .volumes
                .iter()
                .map(|(&id, v)| {
                    (
                        id,
                        VolumeMeta {
                            id,
                            virtual_blocks: v.virtual_blocks,
                            mappings: v.mappings.clone(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Ids of existing volumes.
    pub fn volume_ids(&self) -> Vec<VolumeId> {
        self.state.lock().volumes.keys().copied().collect()
    }

    /// Physical blocks mapped by volume `id` (0 if absent).
    pub fn volume_mapped_blocks(&self, id: VolumeId) -> u64 {
        self.state.lock().volumes.get(&id).map(|v| v.mappings.len() as u64).unwrap_or(0)
    }

    /// Allocates a fresh physical block to `id` at its lowest unmapped
    /// virtual index and fills it with `data`. This is the primitive dummy
    /// writes use: "m free blocks will be allocated and ... filled with
    /// random noise" (§IV-B).
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::NoSpace`] if the pool or the volume's virtual
    /// address space is exhausted; fails if the volume does not exist or
    /// `data` is not block-sized. A data-device failure rolls the fresh
    /// mapping back, so the virtual block never points at storage whose
    /// noise did not land.
    pub fn append_block(&self, id: VolumeId, data: &[u8]) -> Result<u64, BlockDeviceError> {
        if data.len() != self.data.block_size() {
            return Err(BlockDeviceError::WrongBufferSize {
                got: data.len(),
                expected: self.data.block_size(),
            });
        }
        let mut state = self.state.lock();
        let vol = state
            .volumes
            .get(&id)
            .ok_or_else(|| BlockDeviceError::Unsupported { what: format!("no volume {id}") })?;
        // Lowest unmapped virtual index.
        let mut vblock = 0u64;
        for (&v, _) in vol.mappings.iter() {
            if v == vblock {
                vblock += 1;
            } else {
                break;
            }
        }
        if vblock >= vol.virtual_blocks {
            return Err(BlockDeviceError::NoSpace);
        }
        let p = Self::allocate_locked(&mut state)?;
        state.volumes.get_mut(&id).expect("checked above").mappings.insert(vblock, p);
        drop(state);
        if let Err(e) = self.data.write_block(p, data) {
            Self::rollback_staged(&self.state, id, &[(vblock, p)]);
            return Err(e);
        }
        Ok(p)
    }

    /// How many more blocks [`ThinPool::append_block`] can currently land
    /// in volume `id`: the smaller of the pool's free space and the
    /// volume's unmapped virtual space (0 if the volume does not exist).
    pub fn append_headroom(&self, id: VolumeId) -> u64 {
        let state = self.state.lock();
        let pool_free = state.bitmap.free() - state.reserved.len() as u64;
        state
            .volumes
            .get(&id)
            .map(|v| pool_free.min(v.virtual_blocks - v.mappings.len() as u64))
            .unwrap_or(0)
    }

    /// Vectored [`ThinPool::append_block`]: allocates up to `blocks.len()`
    /// fresh physical blocks to `id` (at its lowest unmapped virtual
    /// indices) under **one** pool-lock acquisition, then lands them with
    /// **one** vectored data-device write. This is the primitive a dummy
    /// burst of `m ~ Exp(λ)` blocks rides (§IV-B): one batched pipeline
    /// crossing instead of `m` single-block crossings.
    ///
    /// Returns the number of blocks appended. Exhaustion of the pool or of
    /// the volume's virtual address space is not an error: allocation stops
    /// there and the count reflects what landed (dummy blocks that do not
    /// fit are simply dropped, §IV-B).
    ///
    /// # Errors
    ///
    /// Fails if the volume does not exist, any buffer is not block-sized,
    /// or the data device fails. On a device error every mapping staged by
    /// this call is rolled back, so no virtual block is ever left pointing
    /// at a physical block whose noise never landed.
    pub fn append_blocks(&self, id: VolumeId, blocks: &[&[u8]]) -> Result<u64, BlockDeviceError> {
        let bs = self.data.block_size();
        if let Some(bad) = blocks.iter().find(|b| b.len() != bs) {
            return Err(BlockDeviceError::WrongBufferSize { got: bad.len(), expected: bs });
        }
        let mut writes: Vec<(BlockIndex, &[u8])> = Vec::with_capacity(blocks.len());
        let mut staged: Vec<(u64, u64)> = Vec::with_capacity(blocks.len()); // (vblock, p)
        {
            let mut state = self.state.lock();
            let vol = state
                .volumes
                .get(&id)
                .ok_or_else(|| BlockDeviceError::Unsupported { what: format!("no volume {id}") })?;
            let virtual_blocks = vol.virtual_blocks;
            // Walk the lowest unmapped virtual indices, allocating as we go.
            let mut vblock = 0u64;
            for &data in blocks {
                let vol = state.volumes.get(&id).expect("checked above");
                while vol.mappings.contains_key(&vblock) {
                    vblock += 1;
                }
                if vblock >= virtual_blocks {
                    break; // volume virtual space exhausted: drop the rest
                }
                let Ok(p) = Self::allocate_locked(&mut state) else {
                    break; // pool exhausted: drop the rest
                };
                state.volumes.get_mut(&id).expect("checked above").mappings.insert(vblock, p);
                staged.push((vblock, p));
                writes.push((p, data));
            }
        }
        if let Err(e) = self.data.write_blocks(&writes) {
            Self::rollback_staged(&self.state, id, &staged);
            return Err(e);
        }
        Ok(writes.len() as u64)
    }

    /// Removes mappings staged by a failed vectored write and releases
    /// their (uncommitted) physical reservations. Without this, a mid-batch
    /// device failure would leave virtual blocks pointing at physical
    /// blocks whose data never landed — reads would then expose whatever
    /// stale bytes sit there.
    fn rollback_staged(state: &Arc<Mutex<PoolState>>, id: VolumeId, staged: &[(u64, u64)]) {
        let mut state = state.lock();
        for &(vblock, p) in staged {
            if let Some(vol) = state.volumes.get_mut(&id) {
                vol.mappings.remove(&vblock);
            }
            if !state.reserved.remove(&p) {
                state.bitmap.clear(p);
            }
        }
    }

    /// Vectored [`ThinPool::discard`]: releases the physical blocks backing
    /// many virtual blocks of one volume under a single lock acquisition.
    /// Unmapped entries are no-ops, exactly like the single-block form.
    ///
    /// # Errors
    ///
    /// Fails if the volume does not exist.
    pub fn discard_many(&self, id: VolumeId, vblocks: &[u64]) -> Result<(), BlockDeviceError> {
        let mut state = self.state.lock();
        let vol = state
            .volumes
            .get_mut(&id)
            .ok_or_else(|| BlockDeviceError::Unsupported { what: format!("no volume {id}") })?;
        let freed: Vec<u64> = vblocks.iter().filter_map(|v| vol.mappings.remove(v)).collect();
        for p in freed {
            if !state.reserved.remove(&p) {
                state.bitmap.clear(p);
            }
        }
        Ok(())
    }

    fn allocate_locked(state: &mut PoolState) -> Result<u64, BlockDeviceError> {
        let PoolState { bitmap, allocator, reserved, .. } = state;
        let block = allocator.allocate(bitmap, reserved).ok_or(BlockDeviceError::NoSpace)?;
        debug_assert!(!bitmap.get(block), "allocator returned a committed block");
        let newly = reserved.insert(block);
        debug_assert!(newly, "allocator returned a reserved block");
        Ok(block)
    }

    fn volume_handle(&self, id: VolumeId, virtual_blocks: u64) -> ThinVolume {
        ThinVolume {
            pool_state: Arc::clone(&self.state),
            data: self.data.clone(),
            id,
            virtual_blocks,
        }
    }
}

/// A thin volume: a [`BlockDevice`] whose physical blocks are allocated on
/// first write from the pool's shared free space.
#[derive(Clone)]
pub struct ThinVolume {
    pool_state: Arc<Mutex<PoolState>>,
    data: SharedDevice,
    id: VolumeId,
    virtual_blocks: u64,
}

impl std::fmt::Debug for ThinVolume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThinVolume")
            .field("id", &self.id)
            .field("virtual_blocks", &self.virtual_blocks)
            .finish_non_exhaustive()
    }
}

impl ThinVolume {
    /// This volume's id.
    pub fn id(&self) -> VolumeId {
        self.id
    }

    /// Physical blocks currently mapped.
    pub fn mapped_blocks(&self) -> u64 {
        self.pool_state.lock().volumes.get(&self.id).map(|v| v.mappings.len() as u64).unwrap_or(0)
    }

    /// The physical block backing `vblock`, if mapped.
    pub fn mapping(&self, vblock: u64) -> Option<u64> {
        self.pool_state.lock().volumes.get(&self.id).and_then(|v| v.mappings.get(&vblock)).copied()
    }

    /// Vectored [`ThinVolume::mapping`]: resolves many virtual blocks under
    /// one lock acquisition. Out-of-range indices resolve to `None`.
    pub fn mappings_many(&self, vblocks: &[u64]) -> Vec<Option<u64>> {
        let state = self.pool_state.lock();
        let vol = state.volumes.get(&self.id);
        vblocks.iter().map(|v| vol.and_then(|vol| vol.mappings.get(v)).copied()).collect()
    }
}

impl BlockDevice for ThinVolume {
    fn num_blocks(&self) -> u64 {
        self.virtual_blocks
    }

    fn block_size(&self) -> usize {
        self.data.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.check_index(index)?;
        let mapping = {
            let state = self.pool_state.lock();
            let vol = state.volumes.get(&self.id).ok_or_else(|| BlockDeviceError::Unsupported {
                what: format!("volume {} deleted", self.id),
            })?;
            if let Some((clock, cost)) = &state.read_overhead {
                clock.advance(*cost);
            }
            vol.mappings.get(&index).copied()
        };
        match mapping {
            Some(p) => self.data.read_block(p),
            // Unmapped thin blocks read as zeros without touching the medium.
            None => Ok(vec![0u8; self.data.block_size()]),
        }
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.check_index(index)?;
        self.check_buffer(data)?;
        let (physical, fresh) = {
            let mut state = self.pool_state.lock();
            if !state.volumes.contains_key(&self.id) {
                return Err(BlockDeviceError::Unsupported {
                    what: format!("volume {} deleted", self.id),
                });
            }
            match state.volumes.get(&self.id).expect("checked").mappings.get(&index).copied() {
                Some(p) => (p, false),
                None => {
                    let p = ThinPool::allocate_locked(&mut state)?;
                    state.volumes.get_mut(&self.id).expect("checked").mappings.insert(index, p);
                    (p, true)
                }
            }
        };
        if let Err(e) = self.data.write_block(physical, data) {
            // Never leave a fresh mapping pointing at storage whose data
            // did not land (reads would expose stale bytes).
            if fresh {
                ThinPool::rollback_staged(&self.pool_state, self.id, &[(index, physical)]);
            }
            return Err(e);
        }
        Ok(())
    }

    /// Batched read: resolves every mapping under **one** pool-lock
    /// acquisition (charging the per-lookup read overhead exactly as the
    /// single-block path does), then issues one vectored read on the data
    /// device for the mapped blocks. Unmapped blocks read as zeros.
    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        let bad = indices.iter().position(|&i| i >= self.virtual_blocks);
        let valid = &indices[..bad.unwrap_or(indices.len())];
        let mappings: Vec<Option<u64>> = {
            let state = self.pool_state.lock();
            let vol = state.volumes.get(&self.id).ok_or_else(|| BlockDeviceError::Unsupported {
                what: format!("volume {} deleted", self.id),
            })?;
            if let Some((clock, cost)) = &state.read_overhead {
                for _ in valid {
                    clock.advance(*cost);
                }
            }
            valid.iter().map(|index| vol.mappings.get(index).copied()).collect()
        };
        let physical: Vec<u64> = mappings.iter().filter_map(|m| *m).collect();
        let mut mapped_bufs = self.data.read_blocks(&physical)?.into_iter();
        if let Some(pos) = bad {
            return Err(BlockDeviceError::OutOfRange {
                index: indices[pos],
                num_blocks: self.virtual_blocks,
            });
        }
        Ok(mappings
            .iter()
            .map(|m| match m {
                Some(_) => mapped_bufs.next().expect("one buffer per mapped block"),
                None => vec![0u8; self.data.block_size()],
            })
            .collect())
    }

    /// Batched write: resolves or allocates every mapping under **one**
    /// pool-lock acquisition (consuming the allocator stream in batch
    /// order, exactly as the sequential loop would), then issues one
    /// vectored write on the data device. On pool exhaustion mid-batch the
    /// already-mapped prefix is written before the error surfaces,
    /// preserving sequential fail-fast semantics; on a *device* error the
    /// mappings freshly allocated by this call are rolled back so no
    /// virtual block points at a physical block whose data never landed.
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        let mut staged: Vec<(BlockIndex, &[u8])> = Vec::with_capacity(writes.len());
        let mut fresh: Vec<(u64, u64)> = Vec::new(); // (vblock, p) allocated here
        let mut first_error = None;
        {
            let mut state = self.pool_state.lock();
            if !state.volumes.contains_key(&self.id) {
                return Err(BlockDeviceError::Unsupported {
                    what: format!("volume {} deleted", self.id),
                });
            }
            for &(index, data) in writes {
                if let Err(e) = self.check_index(index).and_then(|()| self.check_buffer(data)) {
                    first_error = Some(e);
                    break;
                }
                let vol = state.volumes.get(&self.id).expect("checked above");
                let physical = match vol.mappings.get(&index).copied() {
                    Some(p) => p,
                    None => match ThinPool::allocate_locked(&mut state) {
                        Ok(p) => {
                            state
                                .volumes
                                .get_mut(&self.id)
                                .expect("checked above")
                                .mappings
                                .insert(index, p);
                            fresh.push((index, p));
                            p
                        }
                        Err(e) => {
                            first_error = Some(e);
                            break;
                        }
                    },
                };
                staged.push((physical, data));
            }
        }
        if let Err(e) = self.data.write_blocks(&staged) {
            ThinPool::rollback_staged(&self.pool_state, self.id, &fresh);
            return Err(e);
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.data.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;

    fn devices(data_blocks: u64, meta_blocks: u64) -> (SharedDevice, SharedDevice) {
        (
            Arc::new(MemDisk::with_default_timing(data_blocks, 512)) as SharedDevice,
            Arc::new(MemDisk::with_default_timing(meta_blocks, 512)) as SharedDevice,
        )
    }

    fn pool(strategy: AllocStrategy) -> ThinPool {
        let (data, meta) = devices(256, 128);
        ThinPool::create(data, meta, PoolConfig::new(8), strategy).unwrap()
    }

    #[test]
    fn thin_volume_reads_zeros_before_write() {
        let p = pool(AllocStrategy::Sequential);
        let v = p.create_volume(1, 100).unwrap();
        assert_eq!(v.read_block(50).unwrap(), vec![0u8; 512]);
        assert_eq!(p.allocated_blocks(), 0, "reads must not allocate");
    }

    #[test]
    fn write_allocates_exactly_one_block() {
        let p = pool(AllocStrategy::Sequential);
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(42, &vec![7u8; 512]).unwrap();
        assert_eq!(p.allocated_blocks(), 1);
        assert_eq!(v.mapped_blocks(), 1);
        assert_eq!(v.read_block(42).unwrap(), vec![7u8; 512]);
        // Overwrite reuses the mapping.
        v.write_block(42, &vec![8u8; 512]).unwrap();
        assert_eq!(p.allocated_blocks(), 1);
        assert_eq!(v.read_block(42).unwrap(), vec![8u8; 512]);
    }

    #[test]
    fn volumes_never_overlap() {
        let p = pool(AllocStrategy::Random);
        let a = p.create_volume(1, 200).unwrap();
        let b = p.create_volume(2, 200).unwrap();
        for i in 0..50 {
            a.write_block(i, &vec![0xAA; 512]).unwrap();
            b.write_block(i, &vec![0xBB; 512]).unwrap();
        }
        // Physical blocks must be disjoint.
        let view = p.metadata_view();
        let pa: HashSet<u64> = view.volumes[&1].mappings.values().copied().collect();
        let pb: HashSet<u64> = view.volumes[&2].mappings.values().copied().collect();
        assert!(pa.is_disjoint(&pb));
        for i in 0..50 {
            assert_eq!(a.read_block(i).unwrap(), vec![0xAA; 512]);
            assert_eq!(b.read_block(i).unwrap(), vec![0xBB; 512]);
        }
    }

    #[test]
    fn over_provisioning_is_allowed_until_space_runs_out() {
        let (data, meta) = devices(16, 64);
        let p =
            ThinPool::create(data, meta, PoolConfig::new(4), AllocStrategy::Sequential).unwrap();
        // Two volumes, each provisioned at the full device size.
        let a = p.create_volume(1, 16).unwrap();
        let b = p.create_volume(2, 16).unwrap();
        for i in 0..8 {
            a.write_block(i, &vec![1u8; 512]).unwrap();
        }
        for i in 0..8 {
            b.write_block(i, &vec![2u8; 512]).unwrap();
        }
        assert_eq!(p.free_blocks(), 0);
        assert!(matches!(a.write_block(9, &vec![1u8; 512]), Err(BlockDeviceError::NoSpace)));
    }

    #[test]
    fn sequential_allocation_is_front_loaded() {
        let p = pool(AllocStrategy::Sequential);
        let v = p.create_volume(1, 100).unwrap();
        for i in 0..20 {
            v.write_block(i, &vec![1u8; 512]).unwrap();
        }
        let view = p.metadata_view();
        let physical: Vec<u64> = view.volumes[&1].mappings.values().copied().collect();
        assert_eq!(physical, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn random_allocation_is_not_front_loaded() {
        let p = pool(AllocStrategy::Random);
        let v = p.create_volume(1, 100).unwrap();
        for i in 0..20 {
            v.write_block(i, &vec![1u8; 512]).unwrap();
        }
        let view = p.metadata_view();
        let physical: Vec<u64> = view.volumes[&1].mappings.values().copied().collect();
        assert_ne!(physical, (0..20).collect::<Vec<u64>>());
        assert!(physical.iter().any(|&b| b >= 64), "some blocks land beyond the front");
    }

    #[test]
    fn commit_and_reopen_restores_state() {
        let (data, meta) = devices(256, 128);
        let p = ThinPool::create(
            data.clone(),
            meta.clone(),
            PoolConfig::new(8),
            AllocStrategy::Sequential,
        )
        .unwrap();
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(5, &vec![0x55; 512]).unwrap();
        p.commit().unwrap();
        drop((p, v));

        let p2 =
            ThinPool::open(data, meta, PoolConfig::new(8), AllocStrategy::Sequential, 0).unwrap();
        let v2 = p2.open_volume(1).unwrap();
        assert_eq!(v2.read_block(5).unwrap(), vec![0x55; 512]);
        assert_eq!(p2.allocated_blocks(), 1);
    }

    #[test]
    fn crash_before_commit_loses_uncommitted_mappings() {
        let (data, meta) = devices(256, 128);
        let p = ThinPool::create(
            data.clone(),
            meta.clone(),
            PoolConfig::new(8),
            AllocStrategy::Sequential,
        )
        .unwrap();
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(5, &vec![0x55; 512]).unwrap();
        p.commit().unwrap();
        v.write_block(6, &vec![0x66; 512]).unwrap();
        // No commit: simulate crash by dropping and reopening.
        drop((p, v));
        let p2 =
            ThinPool::open(data, meta, PoolConfig::new(8), AllocStrategy::Sequential, 0).unwrap();
        let v2 = p2.open_volume(1).unwrap();
        assert_eq!(v2.read_block(5).unwrap(), vec![0x55; 512]);
        assert_eq!(v2.read_block(6).unwrap(), vec![0u8; 512], "uncommitted mapping gone");
        assert_eq!(p2.allocated_blocks(), 1, "uncommitted allocation released");
    }

    #[test]
    fn torn_commit_falls_back_to_previous_transaction() {
        let (data, _) = devices(256, 1);
        let meta_disk = Arc::new(MemDisk::with_default_timing(128, 512));
        let meta: SharedDevice = meta_disk.clone();
        let p = ThinPool::create(
            data.clone(),
            meta.clone(),
            PoolConfig::new(8),
            AllocStrategy::Sequential,
        )
        .unwrap();
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(1, &vec![0x11; 512]).unwrap();
        p.commit().unwrap(); // tx 2, half 1

        // Make the *superblock* write fail: the payload lands in the
        // inactive half but the commit point is never reached.
        let mut faults = mobiceal_blockdev::FaultInjection::default();
        faults.failing_writes.insert(0);
        meta_disk.set_faults(faults);
        v.write_block(2, &vec![0x22; 512]).unwrap();
        assert!(p.commit().is_err(), "superblock write failure must surface");
        meta_disk.set_faults(mobiceal_blockdev::FaultInjection::default());
        drop((p, v));

        let p2 =
            ThinPool::open(data, meta, PoolConfig::new(8), AllocStrategy::Sequential, 0).unwrap();
        let v2 = p2.open_volume(1).unwrap();
        assert_eq!(v2.read_block(1).unwrap(), vec![0x11; 512]);
        assert_eq!(v2.read_block(2).unwrap(), vec![0u8; 512], "torn commit rolled back");
    }

    #[test]
    fn delete_volume_releases_space() {
        let p = pool(AllocStrategy::Sequential);
        let v = p.create_volume(1, 100).unwrap();
        for i in 0..10 {
            v.write_block(i, &vec![1u8; 512]).unwrap();
        }
        assert_eq!(p.allocated_blocks(), 10);
        p.delete_volume(1).unwrap();
        assert_eq!(p.allocated_blocks(), 0);
        assert!(v.read_block(0).is_err(), "handle to deleted volume errors");
        assert!(p.open_volume(1).is_err());
    }

    #[test]
    fn discard_releases_single_block() {
        let p = pool(AllocStrategy::Sequential);
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(3, &vec![1u8; 512]).unwrap();
        v.write_block(4, &vec![2u8; 512]).unwrap();
        p.discard(1, 3).unwrap();
        assert_eq!(p.allocated_blocks(), 1);
        assert_eq!(v.read_block(3).unwrap(), vec![0u8; 512]);
        assert_eq!(v.read_block(4).unwrap(), vec![2u8; 512]);
        p.discard(1, 99).unwrap(); // unmapped: no-op
        assert_eq!(p.allocated_blocks(), 1);
    }

    #[test]
    fn failed_batched_write_rolls_back_fresh_mappings() {
        // A device fault mid-batch must not leave virtual blocks mapped to
        // physical blocks whose data never landed (stale-data exposure).
        let data_disk = Arc::new(MemDisk::with_default_timing(256, 512));
        let (_, meta) = devices(1, 128);
        let p = ThinPool::create(
            data_disk.clone() as SharedDevice,
            meta,
            PoolConfig::new(8),
            AllocStrategy::Sequential,
        )
        .unwrap();
        let v = p.create_volume(1, 100).unwrap();
        // Sequential allocator: the batch will land on physical 0, 1, 2.
        let mut faults = mobiceal_blockdev::FaultInjection::default();
        faults.failing_writes.insert(1);
        data_disk.set_faults(faults);
        let buf = vec![0xAAu8; 512];
        let err = v
            .write_blocks(&[(10, buf.as_slice()), (11, buf.as_slice()), (12, buf.as_slice())])
            .unwrap_err();
        assert!(matches!(err, BlockDeviceError::Io { .. }));
        data_disk.set_faults(mobiceal_blockdev::FaultInjection::default());
        // No mapping survives pointing at unwritten storage.
        assert_eq!(v.mapping(11), None, "failed block unmapped");
        assert_eq!(v.mapping(12), None, "suffix unmapped");
        assert_eq!(v.mapping(10), None, "rolled-back prefix unmapped");
        assert_eq!(p.allocated_blocks(), 0);
        for vb in [10u64, 11, 12] {
            assert_eq!(v.read_block(vb).unwrap(), vec![0u8; 512], "reads as hole");
        }
        // Appends and single-block writes roll back the same way (fault
        // every block: the allocator cursor has moved past the rolled-back
        // physicals).
        let mut faults = mobiceal_blockdev::FaultInjection::default();
        for b in 0..256 {
            faults.failing_writes.insert(b);
        }
        data_disk.set_faults(faults);
        assert!(p.append_blocks(1, &[buf.as_slice()]).is_err());
        assert!(p.append_block(1, &buf).is_err());
        assert!(v.write_block(20, &buf).is_err());
        data_disk.set_faults(mobiceal_blockdev::FaultInjection::default());
        assert_eq!(p.allocated_blocks(), 0);
        assert_eq!(v.mapping(20), None, "single-block failure unmapped");
        assert_eq!(v.read_block(0).unwrap(), vec![0u8; 512]);
        assert_eq!(v.read_block(20).unwrap(), vec![0u8; 512]);
    }

    #[test]
    fn mappings_many_matches_single_lookups() {
        let p = pool(AllocStrategy::Random);
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(3, &vec![1u8; 512]).unwrap();
        v.write_block(7, &vec![2u8; 512]).unwrap();
        let batch = v.mappings_many(&[3, 4, 7, 200]);
        assert_eq!(batch[0], v.mapping(3));
        assert_eq!(batch[1], None);
        assert_eq!(batch[2], v.mapping(7));
        assert_eq!(batch[3], None, "out of range resolves to None");
    }

    #[test]
    fn append_block_maps_lowest_unmapped_index() {
        let p = pool(AllocStrategy::Random);
        p.create_volume(3, 10).unwrap();
        p.append_block(3, &vec![0xAB; 512]).unwrap();
        p.append_block(3, &vec![0xCD; 512]).unwrap();
        let v = p.open_volume(3).unwrap();
        assert_eq!(v.read_block(0).unwrap(), vec![0xAB; 512]);
        assert_eq!(v.read_block(1).unwrap(), vec![0xCD; 512]);
        // Fill the rest, then expect NoSpace on the 11th append.
        for _ in 2..10 {
            p.append_block(3, &vec![0u8; 512]).unwrap();
        }
        assert!(matches!(p.append_block(3, &vec![0u8; 512]), Err(BlockDeviceError::NoSpace)));
    }

    #[test]
    fn volume_budget_enforced() {
        let (data, meta) = devices(64, 64);
        let p =
            ThinPool::create(data, meta, PoolConfig::new(2), AllocStrategy::Sequential).unwrap();
        p.create_volume(1, 10).unwrap();
        p.create_volume(2, 10).unwrap();
        assert!(p.create_volume(3, 10).is_err());
        assert!(p.create_volume(1, 10).is_err(), "duplicate id");
    }

    #[test]
    fn metadata_view_reflects_live_state() {
        let p = pool(AllocStrategy::Sequential);
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(0, &vec![1u8; 512]).unwrap();
        let view = p.metadata_view();
        assert_eq!(view.mapped_blocks(1), 1);
        assert_eq!(view.bitmap.allocated(), 1);
        assert_eq!(p.volume_ids(), vec![1]);
        assert_eq!(p.volume_mapped_blocks(1), 1);
    }

    #[test]
    fn open_rejects_geometry_mismatch() {
        let (data, meta) = devices(256, 128);
        let p = ThinPool::create(data, meta.clone(), PoolConfig::new(4), AllocStrategy::Sequential)
            .unwrap();
        p.commit().unwrap();
        drop(p);
        let wrong_data: SharedDevice = Arc::new(MemDisk::with_default_timing(512, 512));
        assert!(matches!(
            ThinPool::open(wrong_data, meta, PoolConfig::new(4), AllocStrategy::Sequential, 0),
            Err(BlockDeviceError::CorruptMetadata { .. })
        ));
    }

    #[test]
    fn open_rejects_blank_device() {
        let (data, meta) = devices(64, 64);
        assert!(
            ThinPool::open(data, meta, PoolConfig::new(4), AllocStrategy::Sequential, 0).is_err()
        );
    }
}
