//! The thin pool and its volumes.

use crate::allocator::{AllocStrategy, Allocator, RandomAllocator, SequentialAllocator};
use crate::bitmap::Bitmap;
use crate::extent::{Extent, ExtentMap};
use crate::journal::{DeltaOp, JournalConfig, JournalRecord, TransactionManager};
use crate::meta::{MetadataView, Superblock, VolumeMeta};
use mobiceal_blockdev::{BlockDevice, BlockDeviceError, BlockIndex, SharedDevice};
use mobiceal_crypto::sha256;
use mobiceal_sim::{SimClock, SimDuration};
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Identifier of a thin volume within its pool.
pub type VolumeId = u32;

/// Pool creation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Maximum number of volumes the pool will host (the paper's `n`).
    pub max_volumes: u32,
}

impl PoolConfig {
    /// Config with the given volume budget.
    pub fn new(max_volumes: u32) -> Self {
        PoolConfig { max_volumes }
    }
}

/// One uncommitted mapping change, in the order it happened. The commit
/// path coalesces consecutive contiguous deltas into extent ops for the
/// journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MapDelta {
    /// `vblock` now maps to `physical`.
    Insert(u64, u64),
    /// `vblock` is no longer mapped.
    Remove(u64),
}

#[derive(Debug)]
struct VolumeState {
    virtual_blocks: u64,
    mappings: ExtentMap,
    /// Mapping changes since the last commit, in application order.
    /// Cleared only after a commit has durably landed, so a failed commit
    /// retries the same delta.
    dirty: Vec<MapDelta>,
    /// Tombstone set by [`ThinPool::delete_volume`] under this state's
    /// lock. A caller that cloned the handle out of the directory *before*
    /// the delete must observe it after locking: without the flag, a
    /// racing writer could allocate a fresh physical block into the
    /// orphaned state after the delete drained it, and that block would
    /// leak into the committed bitmap forever. (The old single pool lock
    /// made exists-check and allocation atomic; the flag restores that.)
    deleted: bool,
}

impl VolumeState {
    /// Tombstone guard for pool-level APIs (their wording on a missing
    /// volume).
    fn check_live_pool(&self, id: VolumeId) -> Result<(), BlockDeviceError> {
        if self.deleted {
            Err(BlockDeviceError::Unsupported { what: format!("no volume {id}") })
        } else {
            Ok(())
        }
    }

    /// Tombstone guard for [`ThinVolume`] I/O paths (their wording for a
    /// handle that outlived its volume).
    fn check_live_volume(&self, id: VolumeId) -> Result<(), BlockDeviceError> {
        if self.deleted {
            Err(BlockDeviceError::Unsupported { what: format!("volume {id} deleted") })
        } else {
            Ok(())
        }
    }

    /// Maps `vblock` to `physical` and records the delta for the journal.
    fn map(&mut self, vblock: u64, physical: u64) {
        self.mappings.insert(vblock, physical);
        self.dirty.push(MapDelta::Insert(vblock, physical));
    }

    /// Unmaps `vblock`, recording the delta if anything was mapped.
    fn unmap(&mut self, vblock: u64) -> Option<u64> {
        let prev = self.mappings.remove(&vblock);
        if prev.is_some() {
            self.dirty.push(MapDelta::Remove(vblock));
        }
        prev
    }
}

/// One volume's mapping state behind its own lock: two volumes map batches
/// concurrently, contending only on the allocator when they need fresh
/// physical blocks.
type VolumeHandle = Arc<Mutex<VolumeState>>;

/// The allocator/metadata half of the old single pool lock.
struct AllocState {
    /// The bitmap as of the last commit. Blocks allocated in the open
    /// transaction live in `reserved` until commit folds them in — this is
    /// exactly the "transaction problem" setup of §V-A: the allocator works
    /// against the committed bitmap plus a record of in-flight allocations.
    bitmap: Bitmap,
    allocator: Box<dyn Allocator>,
    /// Blocks allocated since the last commit (the open transaction). The
    /// allocator must not hand these out again (§V-A's transaction fix),
    /// and a crash before commit releases them. At commit these become the
    /// record's `Alloc` ops.
    reserved: HashSet<u64>,
    transaction_id: u64,
    active_half: u8,
    /// Volume creates/deletes since the last commit, in order.
    meta_ops: Vec<DeltaOp>,
    /// Committed blocks freed since the last commit (the record's `Free`
    /// ops). Blocks that were only reserved need no op: they were never
    /// journaled as allocated.
    journal_free: Vec<u64>,
    /// Committed blocks freed in the open transaction, held out of the
    /// allocator until the free durably commits. Without this hold-out a
    /// freed block could be reallocated and overwritten *before* the
    /// commit that records the free — a crash in that window would replay
    /// the old mapping against clobbered data (dm-thin defers frees to the
    /// commit boundary for the same reason).
    pending_free: HashSet<u64>,
    /// Committed journal extent in blocks (mirrors the superblock).
    journal_used: u64,
    /// Transaction id of the checkpoint the journal is relative to.
    checkpoint_txid: u64,
    /// Checkpoint payload length, re-recorded by every journaled
    /// superblock write.
    checkpoint_payload_len: u64,
    /// Checkpoint payload digest, likewise.
    checkpoint_digest: [u8; 32],
}

impl AllocState {
    /// Committed bitmap with the open transaction folded in — the live
    /// occupancy an adversary reading the device right now would infer.
    fn live_bitmap(&self) -> Bitmap {
        let mut bm = self.bitmap.clone();
        for &b in &self.reserved {
            bm.set(b);
        }
        bm
    }

    /// Releases one physical block, whether it was committed or still in
    /// the open transaction. Freeing a *committed* block is a journalable
    /// event; dropping an open-transaction reservation is not (it was
    /// never persisted as allocated).
    fn release(&mut self, p: u64) {
        if !self.reserved.remove(&p) {
            self.bitmap.clear(p);
            self.journal_free.push(p);
            // Keep the block unavailable until the free commits: handing it
            // out now would let new data land where a crash-replay still
            // expects the old mapping's contents.
            self.pending_free.insert(p);
        }
    }
}

/// The pool state shared by the pool object and every volume handle.
///
/// # Lock order
///
/// `directory` → volume locks (ascending id when several are held) →
/// `alloc`. `read_overhead` is a leaf: it is never held across another
/// acquisition. Every path in this file follows that order, so the split
/// locks cannot deadlock.
struct PoolShared {
    /// Which volumes exist. Read-locked by every I/O (a `BTreeMap` lookup
    /// plus an `Arc` clone), write-locked only by create/delete — so
    /// volume lifetime changes still serialize, but steady-state I/O on
    /// different volumes proceeds in parallel.
    directory: RwLock<BTreeMap<VolumeId, VolumeHandle>>,
    /// Allocator, committed bitmap and open-transaction bookkeeping.
    alloc: Mutex<AllocState>,
    /// Optional per-read mapping-lookup cost. Real dm-thin walks a btree on
    /// the read path (the paper measures ~18 % sequential-read overhead
    /// from the thin layer, Fig. 4); the write path amortises its btree
    /// updates into the commit.
    read_overhead: RwLock<Option<(SimClock, SimDuration)>>,
}

impl PoolShared {
    /// Looks up a volume handle, erroring like the legacy single-lock code
    /// did for deleted/unknown volumes.
    fn volume(&self, id: VolumeId) -> Result<VolumeHandle, BlockDeviceError> {
        self.directory
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| BlockDeviceError::Unsupported { what: format!("no volume {id}") })
    }

    /// Charges the configured thin-lookup cost for `lookups` mapped reads.
    fn charge_read_overhead(&self, lookups: usize) {
        if let Some((clock, cost)) = self.read_overhead.read().as_ref() {
            for _ in 0..lookups {
                clock.advance(*cost);
            }
        }
    }
}

/// A thin-provisioning pool over a data device and a metadata device.
///
/// See the crate docs for the role this plays in MobiCeal. All mutation is
/// internally synchronised; clones of volume handles may be used from
/// multiple threads. Since the lock split, synchronisation is sharded: an
/// allocator/metadata lock plus one mapping lock per volume, so volumes
/// serve I/O concurrently (see [`PoolShared`] for the lock order).
pub struct ThinPool {
    shared: Arc<PoolShared>,
    data: SharedDevice,
    meta: SharedDevice,
    config: PoolConfig,
}

impl std::fmt::Debug for ThinPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThinPool").field("config", &self.config).finish_non_exhaustive()
    }
}

/// Metadata-device layout: superblock at block 0, journal region next,
/// then the two checkpoint shadow halves.
struct MetaGeometry {
    journal: JournalConfig,
    half_first: u64,
    half_len: u64,
}

fn make_allocator(strategy: AllocStrategy, seed: u64) -> Box<dyn Allocator> {
    match strategy {
        AllocStrategy::Sequential => Box::new(SequentialAllocator::new()),
        AllocStrategy::Random => Box::new(RandomAllocator::with_seed(seed)),
    }
}

impl ThinPool {
    /// Formats a new pool onto `data` + `meta` and commits an empty
    /// transaction.
    ///
    /// # Errors
    ///
    /// Fails if the metadata device is too small for the data device's
    /// bitmap and volume table, or on I/O error.
    pub fn create(
        data: SharedDevice,
        meta: SharedDevice,
        config: PoolConfig,
        strategy: AllocStrategy,
    ) -> Result<Self, BlockDeviceError> {
        Self::create_seeded(data, meta, config, strategy, 0x6d6f6263)
    }

    /// Like [`ThinPool::create`] with an explicit allocator seed, so
    /// experiments can vary the random allocation stream.
    pub fn create_seeded(
        data: SharedDevice,
        meta: SharedDevice,
        config: PoolConfig,
        strategy: AllocStrategy,
        seed: u64,
    ) -> Result<Self, BlockDeviceError> {
        let pool = ThinPool {
            shared: Arc::new(PoolShared {
                directory: RwLock::new(BTreeMap::new()),
                alloc: Mutex::new(AllocState {
                    bitmap: Bitmap::new(data.num_blocks()),
                    allocator: make_allocator(strategy, seed),
                    reserved: HashSet::new(),
                    transaction_id: 0,
                    active_half: 1, // first checkpoint goes to half 0
                    meta_ops: Vec::new(),
                    journal_free: Vec::new(),
                    pending_free: HashSet::new(),
                    journal_used: 0,
                    checkpoint_txid: 0,
                    checkpoint_payload_len: 0,
                    checkpoint_digest: [0u8; 32],
                }),
                read_overhead: RwLock::new(None),
            }),
            data,
            meta,
            config,
        };
        // Format = the initial checkpoint; there is nothing to journal
        // against yet.
        pool.checkpoint()?;
        Ok(pool)
    }

    /// Opens an existing pool from its metadata device (e.g. after a reboot
    /// or crash): decodes the superblock, reads the checkpoint payload from
    /// the active shadow half, then replays the committed journal extent on
    /// top of it. Uncommitted state from a previous run — journal appends
    /// beyond the committed extent included — is, by design, absent.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::CorruptMetadata`] if no valid superblock/payload
    /// is found, the journal fails its digests/sequence checks, or the
    /// recovered state violates bitmap ⊇ mappings; layer I/O errors
    /// otherwise.
    pub fn open(
        data: SharedDevice,
        meta: SharedDevice,
        config: PoolConfig,
        strategy: AllocStrategy,
        seed: u64,
    ) -> Result<Self, BlockDeviceError> {
        let sb = Superblock::decode(&meta.read_block(0)?)?;
        let mut view = Self::read_payload(&meta, &sb)?;
        if view.transaction_id != sb.checkpoint_txid {
            return Err(BlockDeviceError::CorruptMetadata {
                detail: "checkpoint payload transaction mismatch".into(),
            });
        }
        if view.bitmap.len() != data.num_blocks() {
            return Err(BlockDeviceError::CorruptMetadata {
                detail: format!(
                    "bitmap covers {} blocks but data device has {}",
                    view.bitmap.len(),
                    data.num_blocks()
                ),
            });
        }
        // Replay the committed journal extent on top of the checkpoint.
        let tm = TransactionManager::new(meta.clone(), Self::geometry(&meta).journal);
        let records = tm.replay(sb.journal_blocks, sb.checkpoint_txid + 1, sb.transaction_id)?;
        for record in &records {
            Self::apply_record(&mut view, record)?;
        }
        view.transaction_id = sb.transaction_id;
        // Recovery invariant: every mapping references an allocated block.
        for vol in view.volumes.values() {
            for (_, p) in vol.mappings.iter() {
                if !view.bitmap.get(p) {
                    return Err(BlockDeviceError::CorruptMetadata {
                        detail: format!("recovered mapping at {p} not covered by bitmap"),
                    });
                }
            }
        }
        let volumes = view
            .volumes
            .into_iter()
            .map(|(id, v)| {
                (
                    id,
                    Arc::new(Mutex::new(VolumeState {
                        virtual_blocks: v.virtual_blocks,
                        mappings: v.mappings,
                        dirty: Vec::new(),
                        deleted: false,
                    })),
                )
            })
            .collect();
        Ok(ThinPool {
            shared: Arc::new(PoolShared {
                directory: RwLock::new(volumes),
                alloc: Mutex::new(AllocState {
                    bitmap: view.bitmap,
                    allocator: make_allocator(strategy, seed),
                    reserved: HashSet::new(),
                    transaction_id: sb.transaction_id,
                    active_half: sb.active_half,
                    meta_ops: Vec::new(),
                    journal_free: Vec::new(),
                    pending_free: HashSet::new(),
                    journal_used: sb.journal_blocks,
                    checkpoint_txid: sb.checkpoint_txid,
                    checkpoint_payload_len: sb.payload_len,
                    checkpoint_digest: sb.payload_digest,
                }),
                read_overhead: RwLock::new(None),
            }),
            data,
            meta,
            config,
        })
    }

    /// Applies one replayed journal record to a decoded view. Every op is
    /// idempotent on mapping/bitmap state; volume lifecycle ops are
    /// validated so a mis-sequenced journal surfaces as corruption instead
    /// of silently diverging.
    fn apply_record(
        view: &mut MetadataView,
        record: &JournalRecord,
    ) -> Result<(), BlockDeviceError> {
        let corrupt = |detail: String| BlockDeviceError::CorruptMetadata { detail };
        for op in &record.ops {
            match *op {
                DeltaOp::CreateVolume { id, virtual_blocks } => {
                    let fresh = VolumeMeta { id, virtual_blocks, mappings: ExtentMap::new() };
                    if view.volumes.insert(id, fresh).is_some() {
                        return Err(corrupt(format!("journal re-creates volume {id}")));
                    }
                }
                DeltaOp::DeleteVolume { id } => {
                    if view.volumes.remove(&id).is_none() {
                        return Err(corrupt(format!("journal deletes unknown volume {id}")));
                    }
                }
                DeltaOp::SetMapping { id, extent } => {
                    let device_blocks = view.bitmap.len();
                    let vol = view
                        .volumes
                        .get_mut(&id)
                        .ok_or_else(|| corrupt(format!("journal maps unknown volume {id}")))?;
                    if extent.virt_begin + extent.len > vol.virtual_blocks
                        || extent.data_begin + extent.len > device_blocks
                    {
                        return Err(corrupt(format!("journal extent out of range for {id}")));
                    }
                    vol.mappings.insert_run(extent);
                }
                DeltaOp::RemoveMapping { id, virt_begin, len } => {
                    let vol = view
                        .volumes
                        .get_mut(&id)
                        .ok_or_else(|| corrupt(format!("journal unmaps unknown volume {id}")))?;
                    vol.mappings.remove_run(virt_begin, len);
                }
                DeltaOp::Alloc { block } => {
                    if block >= view.bitmap.len() {
                        return Err(corrupt(format!("journal allocates out-of-range {block}")));
                    }
                    view.bitmap.set(block);
                }
                DeltaOp::Free { block } => {
                    if block >= view.bitmap.len() {
                        return Err(corrupt(format!("journal frees out-of-range {block}")));
                    }
                    view.bitmap.clear(block);
                }
                DeltaOp::Register { key, .. } => {
                    return Err(corrupt(format!("pool journal carries register op {key}")));
                }
            }
        }
        Ok(())
    }

    /// Metadata-device layout: block 0 is the superblock, then the journal
    /// region, then the two checkpoint shadow halves.
    fn geometry(meta: &SharedDevice) -> MetaGeometry {
        let usable = meta.num_blocks().saturating_sub(1);
        let journal_blocks = (usable / 8).max(1);
        let half_len = usable.saturating_sub(journal_blocks) / 2;
        MetaGeometry {
            journal: JournalConfig { first_block: 1, blocks: journal_blocks },
            half_first: 1 + journal_blocks,
            half_len,
        }
    }

    fn read_payload(
        meta: &SharedDevice,
        sb: &Superblock,
    ) -> Result<MetadataView, BlockDeviceError> {
        let MetaGeometry { half_first, half_len, .. } = Self::geometry(meta);
        let bs = meta.block_size();
        let start = half_first + sb.active_half as u64 * half_len;
        let need_blocks = (sb.payload_len as usize).div_ceil(bs) as u64;
        if need_blocks > half_len {
            return Err(BlockDeviceError::CorruptMetadata {
                detail: "payload larger than shadow half".into(),
            });
        }
        let indices: Vec<u64> = (0..need_blocks).map(|i| start + i).collect();
        let blocks = meta.read_blocks(&indices)?;
        let mut payload = Vec::with_capacity(need_blocks as usize * bs);
        for block in blocks {
            payload.extend_from_slice(&block);
        }
        payload.truncate(sb.payload_len as usize);
        if sha256(&payload) != sb.payload_digest {
            return Err(BlockDeviceError::CorruptMetadata {
                detail: "payload digest mismatch".into(),
            });
        }
        MetadataView::from_bytes(&payload)
    }

    /// Persists the open transaction crash-consistently and closes it.
    ///
    /// Holds the directory, every volume lock (in ascending id order) and
    /// the allocator lock for the duration: a commit is a global barrier,
    /// so the persisted bitmap and mapping tables are one consistent cut —
    /// a mapping never references a physical block the persisted bitmap
    /// does not account for.
    ///
    /// The fast path appends one checksummed [`JournalRecord`] carrying the
    /// transaction's delta (coalesced mapping extents + bitmap changes) and
    /// rewrites the superblock — I/O proportional to the transaction, not
    /// to the pool. When the record would overflow the journal region, the
    /// commit folds everything into a fresh checkpoint instead (full view
    /// to the inactive shadow half, journal reset).
    ///
    /// # Errors
    ///
    /// I/O errors from the metadata device; on failure the previous
    /// transaction remains intact and the delta is retained for retry.
    pub fn commit(&self) -> Result<(), BlockDeviceError> {
        let directory = self.shared.directory.read();
        // BTreeMap iteration is ascending by id — the canonical volume
        // lock order.
        let mut volumes: Vec<(VolumeId, MutexGuard<'_, VolumeState>)> =
            directory.iter().map(|(&id, handle)| (id, handle.lock())).collect();
        let mut alloc = self.shared.alloc.lock();
        let mut ops: Vec<DeltaOp> = alloc.meta_ops.clone();
        for (id, vol) in volumes.iter() {
            Self::coalesce_deltas(*id, &vol.dirty, &mut ops);
        }
        // Frees before allocs: a block freed and re-allocated in one
        // transaction must replay as allocated.
        for &b in &alloc.journal_free {
            ops.push(DeltaOp::Free { block: b });
        }
        let mut fresh: Vec<u64> = alloc.reserved.iter().copied().collect();
        fresh.sort_unstable();
        for b in fresh {
            ops.push(DeltaOp::Alloc { block: b });
        }
        let record = JournalRecord { seq: alloc.transaction_id + 1, ops };
        let tm = TransactionManager::new(self.meta.clone(), Self::geometry(&self.meta).journal);
        match tm.append(alloc.journal_used, &record) {
            Ok(new_used) => {
                // Superblock write is the commit point: it extends the
                // committed journal extent while re-recording the existing
                // checkpoint reference.
                let sb = Superblock {
                    transaction_id: alloc.transaction_id + 1,
                    active_half: alloc.active_half,
                    payload_len: alloc.checkpoint_payload_len,
                    payload_digest: alloc.checkpoint_digest,
                    checkpoint_txid: alloc.checkpoint_txid,
                    journal_blocks: new_used,
                };
                self.write_superblock(&sb)?;
                alloc.journal_used = new_used;
            }
            // Journal full (or record larger than the region): fold the
            // whole state into a fresh checkpoint and reset the journal.
            Err(BlockDeviceError::NoSpace) => {
                self.checkpoint_locked(&volumes, &mut alloc)?;
            }
            Err(e) => return Err(e),
        }
        Self::finish_commit(&mut volumes, &mut alloc);
        Ok(())
    }

    /// Forces a full-cut commit: serializes the entire metadata view to the
    /// inactive shadow half, flips the superblock to it and resets the
    /// journal. `commit()` falls back to this automatically when the
    /// journal region fills; it is public so callers (and benchmarks) can
    /// compare the full-cut cost against the journaled fast path.
    ///
    /// # Errors
    ///
    /// As [`ThinPool::commit`].
    pub fn checkpoint(&self) -> Result<(), BlockDeviceError> {
        let directory = self.shared.directory.read();
        let mut volumes: Vec<(VolumeId, MutexGuard<'_, VolumeState>)> =
            directory.iter().map(|(&id, handle)| (id, handle.lock())).collect();
        let mut alloc = self.shared.alloc.lock();
        self.checkpoint_locked(&volumes, &mut alloc)?;
        Self::finish_commit(&mut volumes, &mut alloc);
        Ok(())
    }

    /// The full-cut path, under the commit barrier's locks. On success the
    /// superblock names the new half with an empty journal; the caller
    /// still runs [`ThinPool::finish_commit`].
    fn checkpoint_locked(
        &self,
        volumes: &[(VolumeId, MutexGuard<'_, VolumeState>)],
        alloc: &mut AllocState,
    ) -> Result<(), BlockDeviceError> {
        let view = MetadataView {
            transaction_id: alloc.transaction_id + 1,
            bitmap: alloc.live_bitmap(),
            volumes: volumes
                .iter()
                .map(|(id, v)| {
                    (
                        *id,
                        VolumeMeta {
                            id: *id,
                            virtual_blocks: v.virtual_blocks,
                            mappings: v.mappings.clone(),
                        },
                    )
                })
                .collect(),
        };
        let payload = view.to_bytes();
        let MetaGeometry { half_first, half_len, .. } = Self::geometry(&self.meta);
        let bs = self.meta.block_size();
        let target_half = 1 - alloc.active_half;
        let start = half_first + target_half as u64 * half_len;
        let need_blocks = payload.len().div_ceil(bs) as u64;
        if need_blocks > half_len {
            return Err(BlockDeviceError::NoSpace);
        }
        // One vectored write for the whole payload half instead of a write
        // per metadata block.
        let blocks: Vec<Vec<u8>> = (0..need_blocks)
            .map(|i| {
                let mut block = vec![0u8; bs];
                let lo = i as usize * bs;
                let hi = (lo + bs).min(payload.len());
                block[..hi - lo].copy_from_slice(&payload[lo..hi]);
                block
            })
            .collect();
        let writes: Vec<(BlockIndex, &[u8])> = blocks
            .iter()
            .enumerate()
            .map(|(i, block)| (start + i as u64, block.as_slice()))
            .collect();
        self.meta.write_blocks(&writes)?;
        self.meta.flush()?;
        // Superblock last: this is the commit point.
        let digest = sha256(&payload);
        let sb = Superblock {
            transaction_id: alloc.transaction_id + 1,
            active_half: target_half,
            payload_len: payload.len() as u64,
            payload_digest: digest,
            checkpoint_txid: alloc.transaction_id + 1,
            journal_blocks: 0,
        };
        self.write_superblock(&sb)?;
        alloc.active_half = target_half;
        alloc.checkpoint_txid = alloc.transaction_id + 1;
        alloc.checkpoint_payload_len = payload.len() as u64;
        alloc.checkpoint_digest = digest;
        alloc.journal_used = 0;
        Ok(())
    }

    /// Encodes and writes the superblock, flushing after.
    fn write_superblock(&self, sb: &Superblock) -> Result<(), BlockDeviceError> {
        let mut sb_block = vec![0u8; self.meta.block_size()];
        sb.encode_into(&mut sb_block);
        self.meta.write_block(0, &sb_block)?;
        self.meta.flush()
    }

    /// Closes the open transaction after a durable commit: advances the
    /// transaction id, drops the recorded deltas and folds reservations
    /// into the committed bitmap. Only called after the superblock write
    /// succeeded — a failed commit keeps every delta for retry.
    fn finish_commit(
        volumes: &mut [(VolumeId, MutexGuard<'_, VolumeState>)],
        alloc: &mut AllocState,
    ) {
        alloc.transaction_id += 1;
        for (_, vol) in volumes.iter_mut() {
            vol.dirty.clear();
        }
        alloc.meta_ops.clear();
        alloc.journal_free.clear();
        // The frees just became durable: the held-out blocks are now safe
        // to hand out again.
        alloc.pending_free.clear();
        let reserved: Vec<u64> = alloc.reserved.drain().collect();
        for b in reserved {
            alloc.bitmap.set(b);
        }
    }

    /// Coalesces one volume's ordered mapping deltas into extent ops:
    /// consecutive contiguous inserts become one `SetMapping`, consecutive
    /// removes one `RemoveMapping`. Order is preserved, so replaying the
    /// ops reproduces the in-memory mapping table exactly.
    fn coalesce_deltas(id: VolumeId, dirty: &[MapDelta], ops: &mut Vec<DeltaOp>) {
        let mut i = 0usize;
        while i < dirty.len() {
            match dirty[i] {
                MapDelta::Insert(v, p) => {
                    let mut len = 1u64;
                    while let Some(MapDelta::Insert(v2, p2)) = dirty.get(i + len as usize) {
                        if *v2 == v + len && *p2 == p + len {
                            len += 1;
                        } else {
                            break;
                        }
                    }
                    ops.push(DeltaOp::SetMapping {
                        id,
                        extent: Extent { virt_begin: v, data_begin: p, len },
                    });
                    i += len as usize;
                }
                MapDelta::Remove(v) => {
                    let mut len = 1u64;
                    while let Some(MapDelta::Remove(v2)) = dirty.get(i + len as usize) {
                        if *v2 == v + len {
                            len += 1;
                        } else {
                            break;
                        }
                    }
                    ops.push(DeltaOp::RemoveMapping { id, virt_begin: v, len });
                    i += len as usize;
                }
            }
        }
    }

    /// Creates a thin volume of `virtual_blocks` provisioned size.
    ///
    /// # Errors
    ///
    /// Fails if the id is taken, the pool's volume budget is exhausted, or
    /// the id is out of the configured range.
    pub fn create_volume(
        &self,
        id: VolumeId,
        virtual_blocks: u64,
    ) -> Result<ThinVolume, BlockDeviceError> {
        let mut directory = self.shared.directory.write();
        if directory.len() as u32 >= self.config.max_volumes {
            return Err(BlockDeviceError::Unsupported {
                what: format!("pool limited to {} volumes", self.config.max_volumes),
            });
        }
        if directory.contains_key(&id) {
            return Err(BlockDeviceError::Unsupported { what: format!("volume {id} exists") });
        }
        directory.insert(
            id,
            Arc::new(Mutex::new(VolumeState {
                virtual_blocks,
                mappings: ExtentMap::new(),
                dirty: Vec::new(),
                deleted: false,
            })),
        );
        // Record the lifecycle event for the journal (directory write lock
        // → alloc is the canonical order).
        self.shared.alloc.lock().meta_ops.push(DeltaOp::CreateVolume { id, virtual_blocks });
        drop(directory);
        Ok(self.volume_handle(id, virtual_blocks))
    }

    /// Opens an existing volume.
    ///
    /// # Errors
    ///
    /// Fails if the volume does not exist.
    pub fn open_volume(&self, id: VolumeId) -> Result<ThinVolume, BlockDeviceError> {
        let handle = self.shared.volume(id)?;
        let virtual_blocks = {
            let vol = handle.lock();
            vol.check_live_pool(id)?;
            vol.virtual_blocks
        };
        Ok(self.volume_handle(id, virtual_blocks))
    }

    /// Deletes a volume, releasing its physical blocks.
    ///
    /// # Errors
    ///
    /// Fails if the volume does not exist.
    pub fn delete_volume(&self, id: VolumeId) -> Result<(), BlockDeviceError> {
        let handle = self
            .shared
            .directory
            .write()
            .remove(&id)
            .ok_or_else(|| BlockDeviceError::Unsupported { what: format!("no volume {id}") })?;
        // Tombstone + drain under the volume lock: a writer that cloned
        // the handle before the directory removal either finished its
        // mapping pass (its blocks are drained and released here) or will
        // observe `deleted` and error before allocating.
        let blocks: Vec<u64> = {
            let mut vol = handle.lock();
            vol.deleted = true;
            // The volume's pending deltas die with it: the journaled
            // DeleteVolume removes the whole volume on replay, and only
            // *committed* blocks produce Free ops (via `release`).
            vol.dirty.clear();
            std::mem::take(&mut vol.mappings).values().collect()
        };
        let mut alloc = self.shared.alloc.lock();
        alloc.meta_ops.push(DeltaOp::DeleteVolume { id });
        for p in blocks {
            alloc.release(p);
        }
        Ok(())
    }

    /// Releases the physical block backing one virtual block of a volume
    /// (a discard/trim). No-op if unmapped. Used by MobiCeal's dummy-space
    /// garbage collection (§IV-D).
    ///
    /// # Errors
    ///
    /// Fails if the volume does not exist.
    pub fn discard(&self, id: VolumeId, vblock: u64) -> Result<(), BlockDeviceError> {
        self.discard_many(id, &[vblock])
    }

    /// Total physically allocated blocks (committed + open transaction).
    pub fn allocated_blocks(&self) -> u64 {
        let alloc = self.shared.alloc.lock();
        alloc.bitmap.allocated() + alloc.reserved.len() as u64
    }

    /// Free physical blocks.
    pub fn free_blocks(&self) -> u64 {
        let alloc = self.shared.alloc.lock();
        alloc.bitmap.free() - alloc.reserved.len() as u64
    }

    /// The pool's volume budget.
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Charges `cost` on `clock` for every mapped volume read, modelling
    /// dm-thin's mapping-btree lookups on the read path.
    pub fn set_read_overhead(&self, clock: SimClock, cost: SimDuration) {
        *self.shared.read_overhead.write() = Some((clock, cost));
    }

    /// Data-device geometry: block size in bytes.
    pub fn block_size(&self) -> usize {
        self.data.block_size()
    }

    /// The decoded metadata exactly as an adversary with device access would
    /// recover it (current in-memory transaction). Takes the same
    /// directory → volumes → allocator cut as [`ThinPool::commit`], so the
    /// view is consistent even while other threads write.
    pub fn metadata_view(&self) -> MetadataView {
        let directory = self.shared.directory.read();
        let volumes: Vec<(VolumeId, parking_lot::MutexGuard<'_, VolumeState>)> =
            directory.iter().map(|(&id, handle)| (id, handle.lock())).collect();
        let alloc = self.shared.alloc.lock();
        MetadataView {
            transaction_id: alloc.transaction_id,
            bitmap: alloc.live_bitmap(),
            volumes: volumes
                .iter()
                .map(|(id, v)| {
                    (
                        *id,
                        VolumeMeta {
                            id: *id,
                            virtual_blocks: v.virtual_blocks,
                            mappings: v.mappings.clone(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Ids of existing volumes.
    pub fn volume_ids(&self) -> Vec<VolumeId> {
        self.shared.directory.read().keys().copied().collect()
    }

    /// Physical blocks mapped by volume `id` (0 if absent).
    pub fn volume_mapped_blocks(&self, id: VolumeId) -> u64 {
        match self.shared.directory.read().get(&id) {
            Some(handle) => handle.lock().mappings.len() as u64,
            None => 0,
        }
    }

    /// Allocates a fresh physical block to `id` at its lowest unmapped
    /// virtual index and fills it with `data`. This is the primitive dummy
    /// writes use: "m free blocks will be allocated and ... filled with
    /// random noise" (§IV-B).
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::NoSpace`] if the pool or the volume's virtual
    /// address space is exhausted; fails if the volume does not exist or
    /// `data` is not block-sized. A data-device failure rolls the fresh
    /// mapping back, so the virtual block never points at storage whose
    /// noise did not land.
    pub fn append_block(&self, id: VolumeId, data: &[u8]) -> Result<u64, BlockDeviceError> {
        if data.len() != self.data.block_size() {
            return Err(BlockDeviceError::WrongBufferSize {
                got: data.len(),
                expected: self.data.block_size(),
            });
        }
        let handle = self.shared.volume(id)?;
        let (vblock, p) = {
            let mut vol = handle.lock();
            vol.check_live_pool(id)?;
            // Lowest unmapped virtual index.
            let mut vblock = 0u64;
            for (v, _) in vol.mappings.iter() {
                if v == vblock {
                    vblock += 1;
                } else {
                    break;
                }
            }
            if vblock >= vol.virtual_blocks {
                return Err(BlockDeviceError::NoSpace);
            }
            let p = Self::allocate_one(&self.shared)?;
            vol.map(vblock, p);
            (vblock, p)
        };
        if let Err(e) = self.data.write_block(p, data) {
            Self::rollback_staged(&self.shared, id, &[(vblock, p)]);
            return Err(e);
        }
        Ok(p)
    }

    /// How many more blocks [`ThinPool::append_block`] can currently land
    /// in volume `id`: the smaller of the pool's free space and the
    /// volume's unmapped virtual space (0 if the volume does not exist).
    pub fn append_headroom(&self, id: VolumeId) -> u64 {
        let Ok(handle) = self.shared.volume(id) else {
            return 0;
        };
        let vol = handle.lock();
        if vol.deleted {
            return 0;
        }
        let volume_free = vol.virtual_blocks - vol.mappings.len() as u64;
        let alloc = self.shared.alloc.lock();
        let pool_free = alloc.bitmap.free() - alloc.reserved.len() as u64;
        pool_free.min(volume_free)
    }

    /// Vectored [`ThinPool::append_block`]: allocates up to `blocks.len()`
    /// fresh physical blocks to `id` (at its lowest unmapped virtual
    /// indices) under **one** pool-lock acquisition, then lands them with
    /// **one** vectored data-device write. This is the primitive a dummy
    /// burst of `m ~ Exp(λ)` blocks rides (§IV-B): one batched pipeline
    /// crossing instead of `m` single-block crossings.
    ///
    /// Returns the number of blocks appended. Exhaustion of the pool or of
    /// the volume's virtual address space is not an error: allocation stops
    /// there and the count reflects what landed (dummy blocks that do not
    /// fit are simply dropped, §IV-B).
    ///
    /// # Errors
    ///
    /// Fails if the volume does not exist, any buffer is not block-sized,
    /// or the data device fails. On a device error every mapping staged by
    /// this call is rolled back, so no virtual block is ever left pointing
    /// at a physical block whose noise never landed.
    pub fn append_blocks(&self, id: VolumeId, blocks: &[&[u8]]) -> Result<u64, BlockDeviceError> {
        let bs = self.data.block_size();
        if let Some(bad) = blocks.iter().find(|b| b.len() != bs) {
            return Err(BlockDeviceError::WrongBufferSize { got: bad.len(), expected: bs });
        }
        let handle = self.shared.volume(id)?;
        let mut writes: Vec<(BlockIndex, &[u8])> = Vec::with_capacity(blocks.len());
        let mut staged: Vec<(u64, u64)> = Vec::with_capacity(blocks.len()); // (vblock, p)
        {
            let mut vol = handle.lock();
            vol.check_live_pool(id)?;
            let virtual_blocks = vol.virtual_blocks;
            // Walk the lowest unmapped virtual indices, allocating as we go.
            let mut vblock = 0u64;
            for &data in blocks {
                while vol.mappings.contains_key(&vblock) {
                    vblock += 1;
                }
                if vblock >= virtual_blocks {
                    break; // volume virtual space exhausted: drop the rest
                }
                let Ok(p) = Self::allocate_one(&self.shared) else {
                    break; // pool exhausted: drop the rest
                };
                vol.map(vblock, p);
                staged.push((vblock, p));
                writes.push((p, data));
            }
        }
        if let Err(e) = self.data.write_blocks(&writes) {
            Self::rollback_staged(&self.shared, id, &staged);
            return Err(e);
        }
        Ok(writes.len() as u64)
    }

    /// Removes mappings staged by a failed vectored write and releases
    /// their (uncommitted) physical reservations. Without this, a mid-batch
    /// device failure would leave virtual blocks pointing at physical
    /// blocks whose data never landed — reads would then expose whatever
    /// stale bytes sit there. (Volume lock first, allocator lock after —
    /// the canonical order.)
    ///
    /// A physical block is released only if this call actually removed its
    /// mapping: if a concurrent `delete_volume` already drained the volume
    /// (handle gone or tombstoned), the delete released the block, and
    /// releasing it again here could steal a reservation another volume
    /// acquired in the meantime.
    fn rollback_staged(shared: &Arc<PoolShared>, id: VolumeId, staged: &[(u64, u64)]) {
        let mut unstaged: Vec<u64> = Vec::with_capacity(staged.len());
        if let Ok(handle) = shared.volume(id) {
            let mut vol = handle.lock();
            for &(vblock, p) in staged {
                if vol.mappings.get(&vblock) == Some(p) {
                    vol.unmap(vblock);
                    unstaged.push(p);
                }
            }
        }
        let mut alloc = shared.alloc.lock();
        for p in unstaged {
            alloc.release(p);
        }
    }

    /// Vectored [`ThinPool::discard`]: releases the physical blocks backing
    /// many virtual blocks of one volume under a single acquisition of that
    /// volume's mapping lock. Unmapped entries are no-ops, exactly like the
    /// single-block form.
    ///
    /// # Errors
    ///
    /// Fails if the volume does not exist.
    pub fn discard_many(&self, id: VolumeId, vblocks: &[u64]) -> Result<(), BlockDeviceError> {
        let handle = self.shared.volume(id)?;
        let freed: Vec<u64> = {
            let mut vol = handle.lock();
            vol.check_live_pool(id)?;
            vblocks.iter().filter_map(|&v| vol.unmap(v)).collect()
        };
        let mut alloc = self.shared.alloc.lock();
        for p in freed {
            alloc.release(p);
        }
        Ok(())
    }

    /// Allocates one fresh physical block under the allocator lock. The
    /// caller holds the owning volume's lock, so two volumes allocating
    /// concurrently contend only for the duration of this call.
    fn allocate_one(shared: &PoolShared) -> Result<u64, BlockDeviceError> {
        let mut alloc = shared.alloc.lock();
        let AllocState { bitmap, allocator, reserved, pending_free, .. } = &mut *alloc;
        // Blocks freed in the open transaction stay off-limits alongside
        // the open reservations until their free commits (see
        // `AllocState::pending_free`). The common path — no uncommitted
        // frees — passes `reserved` through untouched, so allocation
        // streams (and the calibrated rows built on them) are unchanged.
        let block = if pending_free.is_empty() {
            allocator.allocate(bitmap, reserved)
        } else {
            let mut unavailable = reserved.clone();
            unavailable.extend(pending_free.iter().copied());
            allocator.allocate(bitmap, &unavailable)
        }
        .ok_or(BlockDeviceError::NoSpace)?;
        debug_assert!(!bitmap.get(block), "allocator returned a committed block");
        debug_assert!(!pending_free.contains(&block), "allocator returned a pending free");
        let newly = reserved.insert(block);
        debug_assert!(newly, "allocator returned a reserved block");
        Ok(block)
    }

    fn volume_handle(&self, id: VolumeId, virtual_blocks: u64) -> ThinVolume {
        ThinVolume { shared: Arc::clone(&self.shared), data: self.data.clone(), id, virtual_blocks }
    }
}

/// A thin volume: a [`BlockDevice`] whose physical blocks are allocated on
/// first write from the pool's shared free space.
///
/// Each volume's mapping table sits behind its own lock, so clones of
/// different volumes map batches concurrently; they meet only at the
/// allocator (fresh blocks) and the data device (whose shard locks allow
/// parallel copies).
#[derive(Clone)]
pub struct ThinVolume {
    shared: Arc<PoolShared>,
    data: SharedDevice,
    id: VolumeId,
    virtual_blocks: u64,
}

impl std::fmt::Debug for ThinVolume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThinVolume")
            .field("id", &self.id)
            .field("virtual_blocks", &self.virtual_blocks)
            .finish_non_exhaustive()
    }
}

impl ThinVolume {
    /// This volume's id.
    pub fn id(&self) -> VolumeId {
        self.id
    }

    /// This volume's mapping-lock handle, or the "deleted" error every
    /// I/O path surfaces once the volume is gone.
    fn handle(&self) -> Result<VolumeHandle, BlockDeviceError> {
        self.shared.directory.read().get(&self.id).cloned().ok_or_else(|| {
            BlockDeviceError::Unsupported { what: format!("volume {} deleted", self.id) }
        })
    }

    /// Physical blocks currently mapped.
    pub fn mapped_blocks(&self) -> u64 {
        match self.handle() {
            Ok(handle) => handle.lock().mappings.len() as u64,
            Err(_) => 0,
        }
    }

    /// The physical block backing `vblock`, if mapped.
    pub fn mapping(&self, vblock: u64) -> Option<u64> {
        self.handle().ok().and_then(|h| h.lock().mappings.get(&vblock))
    }

    /// Vectored [`ThinVolume::mapping`]: resolves many virtual blocks under
    /// one acquisition of the volume's mapping lock. Out-of-range indices
    /// resolve to `None`.
    pub fn mappings_many(&self, vblocks: &[u64]) -> Vec<Option<u64>> {
        match self.handle() {
            Ok(handle) => {
                let vol = handle.lock();
                vblocks.iter().map(|v| vol.mappings.get(v)).collect()
            }
            Err(_) => vec![None; vblocks.len()],
        }
    }
}

impl BlockDevice for ThinVolume {
    fn num_blocks(&self) -> u64 {
        self.virtual_blocks
    }

    fn block_size(&self) -> usize {
        self.data.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.check_index(index)?;
        let handle = self.handle()?;
        let mapping = {
            let vol = handle.lock();
            vol.check_live_volume(self.id)?;
            vol.mappings.get(&index)
        };
        self.shared.charge_read_overhead(1);
        match mapping {
            Some(p) => self.data.read_block(p),
            // Unmapped thin blocks read as zeros without touching the medium.
            None => Ok(vec![0u8; self.data.block_size()]),
        }
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.check_index(index)?;
        self.check_buffer(data)?;
        let handle = self.handle()?;
        let (physical, fresh) = {
            let mut vol = handle.lock();
            vol.check_live_volume(self.id)?;
            match vol.mappings.get(&index) {
                Some(p) => (p, false),
                None => {
                    let p = ThinPool::allocate_one(&self.shared)?;
                    vol.map(index, p);
                    (p, true)
                }
            }
        };
        if let Err(e) = self.data.write_block(physical, data) {
            // Never leave a fresh mapping pointing at storage whose data
            // did not land (reads would expose stale bytes).
            if fresh {
                ThinPool::rollback_staged(&self.shared, self.id, &[(index, physical)]);
            }
            return Err(e);
        }
        Ok(())
    }

    /// Batched read: resolves every mapping under **one** acquisition of
    /// this volume's mapping lock (charging the per-lookup read overhead
    /// exactly as the single-block path does), then issues one vectored
    /// read on the data device for the mapped blocks. Unmapped blocks read
    /// as zeros. Other volumes' batches resolve concurrently.
    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        let bad = indices.iter().position(|&i| i >= self.virtual_blocks);
        let valid = &indices[..bad.unwrap_or(indices.len())];
        let handle = self.handle()?;
        let mappings: Vec<Option<u64>> = {
            let vol = handle.lock();
            vol.check_live_volume(self.id)?;
            valid.iter().map(|index| vol.mappings.get(index)).collect()
        };
        self.shared.charge_read_overhead(valid.len());
        let physical: Vec<u64> = mappings.iter().filter_map(|m| *m).collect();
        let mut mapped_bufs = self.data.read_blocks(&physical)?.into_iter();
        if let Some(pos) = bad {
            return Err(BlockDeviceError::OutOfRange {
                index: indices[pos],
                num_blocks: self.virtual_blocks,
            });
        }
        mappings
            .iter()
            .map(|m| match m {
                Some(_) => mapped_bufs.next().ok_or_else(|| BlockDeviceError::Io {
                    reason: "data device returned fewer buffers than mapped blocks".to_string(),
                }),
                None => Ok(vec![0u8; self.data.block_size()]),
            })
            .collect()
    }

    /// Batched write: resolves or allocates every mapping under **one**
    /// acquisition of this volume's mapping lock (consuming the allocator
    /// stream in batch order, exactly as the sequential loop would), then
    /// issues one vectored write on the data device. Two volumes run this
    /// concurrently, interleaving only on the allocator lock. On pool
    /// exhaustion mid-batch the already-mapped prefix is written before
    /// the error surfaces, preserving sequential fail-fast semantics; on a
    /// *device* error the mappings freshly allocated by this call are
    /// rolled back so no virtual block points at a physical block whose
    /// data never landed.
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        let mut staged: Vec<(BlockIndex, &[u8])> = Vec::with_capacity(writes.len());
        let mut fresh: Vec<(u64, u64)> = Vec::new(); // (vblock, p) allocated here
        let mut first_error = None;
        let handle = self.handle()?;
        {
            let mut vol = handle.lock();
            vol.check_live_volume(self.id)?;
            for &(index, data) in writes {
                if let Err(e) = self.check_index(index).and_then(|()| self.check_buffer(data)) {
                    first_error = Some(e);
                    break;
                }
                let physical = match vol.mappings.get(&index) {
                    Some(p) => p,
                    None => match ThinPool::allocate_one(&self.shared) {
                        Ok(p) => {
                            vol.map(index, p);
                            fresh.push((index, p));
                            p
                        }
                        Err(e) => {
                            first_error = Some(e);
                            break;
                        }
                    },
                };
                staged.push((physical, data));
            }
        }
        if let Err(e) = self.data.write_blocks(&staged) {
            ThinPool::rollback_staged(&self.shared, self.id, &fresh);
            return Err(e);
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.data.flush()
    }

    fn host_queue_enter(&self) {
        self.data.host_queue_enter();
    }

    fn host_queue_leave(&self) {
        self.data.host_queue_leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;

    fn devices(data_blocks: u64, meta_blocks: u64) -> (SharedDevice, SharedDevice) {
        (
            Arc::new(MemDisk::with_default_timing(data_blocks, 512)) as SharedDevice,
            Arc::new(MemDisk::with_default_timing(meta_blocks, 512)) as SharedDevice,
        )
    }

    fn pool(strategy: AllocStrategy) -> ThinPool {
        let (data, meta) = devices(256, 128);
        ThinPool::create(data, meta, PoolConfig::new(8), strategy).unwrap()
    }

    #[test]
    fn thin_volume_reads_zeros_before_write() {
        let p = pool(AllocStrategy::Sequential);
        let v = p.create_volume(1, 100).unwrap();
        assert_eq!(v.read_block(50).unwrap(), vec![0u8; 512]);
        assert_eq!(p.allocated_blocks(), 0, "reads must not allocate");
    }

    #[test]
    fn write_allocates_exactly_one_block() {
        let p = pool(AllocStrategy::Sequential);
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(42, &vec![7u8; 512]).unwrap();
        assert_eq!(p.allocated_blocks(), 1);
        assert_eq!(v.mapped_blocks(), 1);
        assert_eq!(v.read_block(42).unwrap(), vec![7u8; 512]);
        // Overwrite reuses the mapping.
        v.write_block(42, &vec![8u8; 512]).unwrap();
        assert_eq!(p.allocated_blocks(), 1);
        assert_eq!(v.read_block(42).unwrap(), vec![8u8; 512]);
    }

    #[test]
    fn volumes_never_overlap() {
        let p = pool(AllocStrategy::Random);
        let a = p.create_volume(1, 200).unwrap();
        let b = p.create_volume(2, 200).unwrap();
        for i in 0..50 {
            a.write_block(i, &vec![0xAA; 512]).unwrap();
            b.write_block(i, &vec![0xBB; 512]).unwrap();
        }
        // Physical blocks must be disjoint.
        let view = p.metadata_view();
        let pa: HashSet<u64> = view.volumes[&1].mappings.values().collect();
        let pb: HashSet<u64> = view.volumes[&2].mappings.values().collect();
        assert!(pa.is_disjoint(&pb));
        for i in 0..50 {
            assert_eq!(a.read_block(i).unwrap(), vec![0xAA; 512]);
            assert_eq!(b.read_block(i).unwrap(), vec![0xBB; 512]);
        }
    }

    #[test]
    fn over_provisioning_is_allowed_until_space_runs_out() {
        let (data, meta) = devices(16, 64);
        let p =
            ThinPool::create(data, meta, PoolConfig::new(4), AllocStrategy::Sequential).unwrap();
        // Two volumes, each provisioned at the full device size.
        let a = p.create_volume(1, 16).unwrap();
        let b = p.create_volume(2, 16).unwrap();
        for i in 0..8 {
            a.write_block(i, &vec![1u8; 512]).unwrap();
        }
        for i in 0..8 {
            b.write_block(i, &vec![2u8; 512]).unwrap();
        }
        assert_eq!(p.free_blocks(), 0);
        assert!(matches!(a.write_block(9, &vec![1u8; 512]), Err(BlockDeviceError::NoSpace)));
    }

    #[test]
    fn freed_blocks_stay_unavailable_until_the_free_commits() {
        let (data, meta) = devices(16, 64);
        let p =
            ThinPool::create(data, meta, PoolConfig::new(4), AllocStrategy::Sequential).unwrap();
        let v = p.create_volume(1, 32).unwrap();
        for i in 0..16 {
            v.write_block(i, &vec![1u8; 512]).unwrap();
        }
        p.commit().unwrap();
        // Free one committed block; the free is not yet durable.
        p.discard_many(1, &[3]).unwrap();
        // Handing the block out now would let new data land where a
        // crash-replay still expects vblock 3's contents — the allocator
        // must treat the pool as full until the free commits.
        assert!(matches!(v.write_block(20, &vec![2u8; 512]), Err(BlockDeviceError::NoSpace)));
        p.commit().unwrap();
        v.write_block(20, &vec![2u8; 512]).unwrap();
        assert_eq!(v.read_block(20).unwrap(), vec![2u8; 512]);
    }

    #[test]
    fn sequential_allocation_is_front_loaded() {
        let p = pool(AllocStrategy::Sequential);
        let v = p.create_volume(1, 100).unwrap();
        for i in 0..20 {
            v.write_block(i, &vec![1u8; 512]).unwrap();
        }
        let view = p.metadata_view();
        let physical: Vec<u64> = view.volumes[&1].mappings.values().collect();
        assert_eq!(physical, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn random_allocation_is_not_front_loaded() {
        let p = pool(AllocStrategy::Random);
        let v = p.create_volume(1, 100).unwrap();
        for i in 0..20 {
            v.write_block(i, &vec![1u8; 512]).unwrap();
        }
        let view = p.metadata_view();
        let physical: Vec<u64> = view.volumes[&1].mappings.values().collect();
        assert_ne!(physical, (0..20).collect::<Vec<u64>>());
        assert!(physical.iter().any(|&b| b >= 64), "some blocks land beyond the front");
    }

    #[test]
    fn commit_and_reopen_restores_state() {
        let (data, meta) = devices(256, 128);
        let p = ThinPool::create(
            data.clone(),
            meta.clone(),
            PoolConfig::new(8),
            AllocStrategy::Sequential,
        )
        .unwrap();
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(5, &vec![0x55; 512]).unwrap();
        p.commit().unwrap();
        drop((p, v));

        let p2 =
            ThinPool::open(data, meta, PoolConfig::new(8), AllocStrategy::Sequential, 0).unwrap();
        let v2 = p2.open_volume(1).unwrap();
        assert_eq!(v2.read_block(5).unwrap(), vec![0x55; 512]);
        assert_eq!(p2.allocated_blocks(), 1);
    }

    #[test]
    fn crash_before_commit_loses_uncommitted_mappings() {
        let (data, meta) = devices(256, 128);
        let p = ThinPool::create(
            data.clone(),
            meta.clone(),
            PoolConfig::new(8),
            AllocStrategy::Sequential,
        )
        .unwrap();
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(5, &vec![0x55; 512]).unwrap();
        p.commit().unwrap();
        v.write_block(6, &vec![0x66; 512]).unwrap();
        // No commit: simulate crash by dropping and reopening.
        drop((p, v));
        let p2 =
            ThinPool::open(data, meta, PoolConfig::new(8), AllocStrategy::Sequential, 0).unwrap();
        let v2 = p2.open_volume(1).unwrap();
        assert_eq!(v2.read_block(5).unwrap(), vec![0x55; 512]);
        assert_eq!(v2.read_block(6).unwrap(), vec![0u8; 512], "uncommitted mapping gone");
        assert_eq!(p2.allocated_blocks(), 1, "uncommitted allocation released");
    }

    #[test]
    fn torn_commit_falls_back_to_previous_transaction() {
        let (data, _) = devices(256, 1);
        let meta_disk = Arc::new(MemDisk::with_default_timing(128, 512));
        let meta: SharedDevice = meta_disk.clone();
        let p = ThinPool::create(
            data.clone(),
            meta.clone(),
            PoolConfig::new(8),
            AllocStrategy::Sequential,
        )
        .unwrap();
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(1, &vec![0x11; 512]).unwrap();
        p.commit().unwrap(); // tx 2, half 1

        // Make the *superblock* write fail: the payload lands in the
        // inactive half but the commit point is never reached.
        let mut faults = mobiceal_blockdev::FaultInjection::default();
        faults.failing_writes.insert(0);
        meta_disk.set_faults(faults);
        v.write_block(2, &vec![0x22; 512]).unwrap();
        assert!(p.commit().is_err(), "superblock write failure must surface");
        meta_disk.set_faults(mobiceal_blockdev::FaultInjection::default());
        drop((p, v));

        let p2 =
            ThinPool::open(data, meta, PoolConfig::new(8), AllocStrategy::Sequential, 0).unwrap();
        let v2 = p2.open_volume(1).unwrap();
        assert_eq!(v2.read_block(1).unwrap(), vec![0x11; 512]);
        assert_eq!(v2.read_block(2).unwrap(), vec![0u8; 512], "torn commit rolled back");
    }

    #[test]
    fn delete_volume_releases_space() {
        let p = pool(AllocStrategy::Sequential);
        let v = p.create_volume(1, 100).unwrap();
        for i in 0..10 {
            v.write_block(i, &vec![1u8; 512]).unwrap();
        }
        assert_eq!(p.allocated_blocks(), 10);
        p.delete_volume(1).unwrap();
        assert_eq!(p.allocated_blocks(), 0);
        assert!(v.read_block(0).is_err(), "handle to deleted volume errors");
        assert!(p.open_volume(1).is_err());
    }

    #[test]
    fn discard_releases_single_block() {
        let p = pool(AllocStrategy::Sequential);
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(3, &vec![1u8; 512]).unwrap();
        v.write_block(4, &vec![2u8; 512]).unwrap();
        p.discard(1, 3).unwrap();
        assert_eq!(p.allocated_blocks(), 1);
        assert_eq!(v.read_block(3).unwrap(), vec![0u8; 512]);
        assert_eq!(v.read_block(4).unwrap(), vec![2u8; 512]);
        p.discard(1, 99).unwrap(); // unmapped: no-op
        assert_eq!(p.allocated_blocks(), 1);
    }

    #[test]
    fn failed_batched_write_rolls_back_fresh_mappings() {
        // A device fault mid-batch must not leave virtual blocks mapped to
        // physical blocks whose data never landed (stale-data exposure).
        let data_disk = Arc::new(MemDisk::with_default_timing(256, 512));
        let (_, meta) = devices(1, 128);
        let p = ThinPool::create(
            data_disk.clone() as SharedDevice,
            meta,
            PoolConfig::new(8),
            AllocStrategy::Sequential,
        )
        .unwrap();
        let v = p.create_volume(1, 100).unwrap();
        // Sequential allocator: the batch will land on physical 0, 1, 2.
        let mut faults = mobiceal_blockdev::FaultInjection::default();
        faults.failing_writes.insert(1);
        data_disk.set_faults(faults);
        let buf = vec![0xAAu8; 512];
        let err = v
            .write_blocks(&[(10, buf.as_slice()), (11, buf.as_slice()), (12, buf.as_slice())])
            .unwrap_err();
        assert!(matches!(err, BlockDeviceError::Io { .. }));
        data_disk.set_faults(mobiceal_blockdev::FaultInjection::default());
        // No mapping survives pointing at unwritten storage.
        assert_eq!(v.mapping(11), None, "failed block unmapped");
        assert_eq!(v.mapping(12), None, "suffix unmapped");
        assert_eq!(v.mapping(10), None, "rolled-back prefix unmapped");
        assert_eq!(p.allocated_blocks(), 0);
        for vb in [10u64, 11, 12] {
            assert_eq!(v.read_block(vb).unwrap(), vec![0u8; 512], "reads as hole");
        }
        // Appends and single-block writes roll back the same way (fault
        // every block: the allocator cursor has moved past the rolled-back
        // physicals).
        let mut faults = mobiceal_blockdev::FaultInjection::default();
        for b in 0..256 {
            faults.failing_writes.insert(b);
        }
        data_disk.set_faults(faults);
        assert!(p.append_blocks(1, &[buf.as_slice()]).is_err());
        assert!(p.append_block(1, &buf).is_err());
        assert!(v.write_block(20, &buf).is_err());
        data_disk.set_faults(mobiceal_blockdev::FaultInjection::default());
        assert_eq!(p.allocated_blocks(), 0);
        assert_eq!(v.mapping(20), None, "single-block failure unmapped");
        assert_eq!(v.read_block(0).unwrap(), vec![0u8; 512]);
        assert_eq!(v.read_block(20).unwrap(), vec![0u8; 512]);
    }

    #[test]
    fn two_volumes_map_batches_concurrently_without_aliasing() {
        // The split locks: both volumes' mapping passes run from separate
        // threads. Whatever the interleaving, the physical blocks stay
        // disjoint, both volumes read back their own data, and the pool's
        // accounting matches the per-volume sums.
        let (data, meta) = devices(4096, 128);
        let p = Arc::new(
            ThinPool::create(data, meta, PoolConfig::new(8), AllocStrategy::Random).unwrap(),
        );
        let a = p.create_volume(1, 2048).unwrap();
        let b = p.create_volume(2, 2048).unwrap();
        std::thread::scope(|s| {
            for (vol, fill) in [(a.clone(), 0xAAu8), (b.clone(), 0xBBu8)] {
                s.spawn(move || {
                    let data = vec![fill; 512];
                    for round in 0..8u64 {
                        let batch: Vec<(u64, &[u8])> =
                            (0..32).map(|i| (round * 32 + i, data.as_slice())).collect();
                        vol.write_blocks(&batch).unwrap();
                    }
                });
            }
        });
        for i in 0..256u64 {
            assert_eq!(a.read_block(i).unwrap(), vec![0xAA; 512], "a[{i}]");
            assert_eq!(b.read_block(i).unwrap(), vec![0xBB; 512], "b[{i}]");
        }
        let view = p.metadata_view();
        let pa: HashSet<u64> = view.volumes[&1].mappings.values().collect();
        let pb: HashSet<u64> = view.volumes[&2].mappings.values().collect();
        assert_eq!(pa.len(), 256);
        assert_eq!(pb.len(), 256);
        assert!(pa.is_disjoint(&pb), "volumes must never share a physical block");
        assert_eq!(p.allocated_blocks(), 512);
        // A commit taken now persists exactly this cut.
        p.commit().unwrap();
        assert_eq!(p.metadata_view().bitmap.allocated(), 512);
    }

    #[test]
    fn commit_races_with_batched_writers_consistently() {
        // The commit barrier (all volume locks + allocator) must always
        // persist a bitmap that covers every persisted mapping, no matter
        // when it cuts into concurrent writers.
        let (data, meta) = devices(4096, 128);
        let p = Arc::new(
            ThinPool::create(data, meta, PoolConfig::new(8), AllocStrategy::Random).unwrap(),
        );
        let v = p.create_volume(1, 2048).unwrap();
        std::thread::scope(|s| {
            let pool = Arc::clone(&p);
            s.spawn(move || {
                for _ in 0..10 {
                    pool.commit().unwrap();
                }
            });
            let vol = v.clone();
            s.spawn(move || {
                let data = vec![0x5Cu8; 512];
                for round in 0..16u64 {
                    let batch: Vec<(u64, &[u8])> =
                        (0..16).map(|i| (round * 16 + i, data.as_slice())).collect();
                    vol.write_blocks(&batch).unwrap();
                }
            });
        });
        p.commit().unwrap();
        let view = p.metadata_view();
        for phys in view.volumes[&1].mappings.values() {
            assert!(view.bitmap.get(phys), "mapping at {phys} must be accounted allocated");
        }
    }

    #[test]
    fn delete_tombstone_blocks_stale_handles() {
        // The race the tombstone closes: a writer resolved its volume
        // handle from the directory *before* delete_volume landed. The
        // deleted flag — set and drained under the volume's own lock —
        // must stop it from allocating into the orphaned state (which
        // would leak the block into the committed bitmap forever).
        let p = pool(AllocStrategy::Sequential);
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(0, &vec![1u8; 512]).unwrap();
        let stale = p.shared.volume(1).unwrap(); // the pre-delete handle
        p.delete_volume(1).unwrap();
        {
            let vol = stale.lock();
            assert!(vol.deleted, "tombstone set under the volume lock");
            assert!(vol.mappings.is_empty(), "mappings drained by delete");
            assert!(vol.check_live_pool(1).is_err());
            assert!(vol.check_live_volume(1).is_err());
        }
        // Every public path errors and allocates nothing.
        assert!(v.write_block(0, &vec![1u8; 512]).is_err());
        assert!(v.write_blocks(&[(0, &vec![1u8; 512][..])]).is_err());
        assert!(v.read_block(0).is_err());
        assert!(p.append_block(1, &vec![1u8; 512]).is_err());
        assert_eq!(p.append_headroom(1), 0);
        assert_eq!(p.allocated_blocks(), 0, "nothing may leak past the tombstone");
        p.commit().unwrap();
        assert_eq!(p.metadata_view().bitmap.allocated(), 0);
    }

    #[test]
    fn delete_racing_concurrent_writers_never_leaks() {
        // Stress the same race end-to-end: writers hammer a volume while
        // it is deleted. Whoever wins each interleaving, every allocated
        // physical block must end up released — the pool accounting
        // always returns to zero.
        for round in 0..8u64 {
            let (data, meta) = devices(512, 128);
            let p = Arc::new(
                ThinPool::create(data, meta, PoolConfig::new(4), AllocStrategy::Sequential)
                    .unwrap(),
            );
            let v = p.create_volume(1, 400).unwrap();
            std::thread::scope(|s| {
                for t in 0..2u64 {
                    let vol = v.clone();
                    s.spawn(move || {
                        let buf = vec![1u8; 512];
                        for i in 0..60u64 {
                            // Errors ("volume deleted", NoSpace) are the
                            // expected outcome once the delete lands.
                            let _ = vol.write_block(t * 60 + i, &buf);
                        }
                    });
                }
                let pool = Arc::clone(&p);
                s.spawn(move || {
                    let _ = pool.delete_volume(1);
                });
            });
            assert_eq!(p.allocated_blocks(), 0, "round {round}: leaked physical blocks");
            p.commit().unwrap();
            assert_eq!(p.metadata_view().bitmap.allocated(), 0, "round {round}: leak committed");
        }
    }

    #[test]
    fn mappings_many_matches_single_lookups() {
        let p = pool(AllocStrategy::Random);
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(3, &vec![1u8; 512]).unwrap();
        v.write_block(7, &vec![2u8; 512]).unwrap();
        let batch = v.mappings_many(&[3, 4, 7, 200]);
        assert_eq!(batch[0], v.mapping(3));
        assert_eq!(batch[1], None);
        assert_eq!(batch[2], v.mapping(7));
        assert_eq!(batch[3], None, "out of range resolves to None");
    }

    #[test]
    fn append_block_maps_lowest_unmapped_index() {
        let p = pool(AllocStrategy::Random);
        p.create_volume(3, 10).unwrap();
        p.append_block(3, &vec![0xAB; 512]).unwrap();
        p.append_block(3, &vec![0xCD; 512]).unwrap();
        let v = p.open_volume(3).unwrap();
        assert_eq!(v.read_block(0).unwrap(), vec![0xAB; 512]);
        assert_eq!(v.read_block(1).unwrap(), vec![0xCD; 512]);
        // Fill the rest, then expect NoSpace on the 11th append.
        for _ in 2..10 {
            p.append_block(3, &vec![0u8; 512]).unwrap();
        }
        assert!(matches!(p.append_block(3, &vec![0u8; 512]), Err(BlockDeviceError::NoSpace)));
    }

    #[test]
    fn volume_budget_enforced() {
        let (data, meta) = devices(64, 64);
        let p =
            ThinPool::create(data, meta, PoolConfig::new(2), AllocStrategy::Sequential).unwrap();
        p.create_volume(1, 10).unwrap();
        p.create_volume(2, 10).unwrap();
        assert!(p.create_volume(3, 10).is_err());
        assert!(p.create_volume(1, 10).is_err(), "duplicate id");
    }

    #[test]
    fn metadata_view_reflects_live_state() {
        let p = pool(AllocStrategy::Sequential);
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(0, &vec![1u8; 512]).unwrap();
        let view = p.metadata_view();
        assert_eq!(view.mapped_blocks(1), 1);
        assert_eq!(view.bitmap.allocated(), 1);
        assert_eq!(p.volume_ids(), vec![1]);
        assert_eq!(p.volume_mapped_blocks(1), 1);
    }

    #[test]
    fn open_rejects_geometry_mismatch() {
        let (data, meta) = devices(256, 128);
        let p = ThinPool::create(data, meta.clone(), PoolConfig::new(4), AllocStrategy::Sequential)
            .unwrap();
        p.commit().unwrap();
        drop(p);
        let wrong_data: SharedDevice = Arc::new(MemDisk::with_default_timing(512, 512));
        assert!(matches!(
            ThinPool::open(wrong_data, meta, PoolConfig::new(4), AllocStrategy::Sequential, 0),
            Err(BlockDeviceError::CorruptMetadata { .. })
        ));
    }

    #[test]
    fn open_rejects_blank_device() {
        let (data, meta) = devices(64, 64);
        assert!(
            ThinPool::open(data, meta, PoolConfig::new(4), AllocStrategy::Sequential, 0).is_err()
        );
    }

    #[test]
    fn commit_io_proportional_to_transaction_size() {
        // The seed full-cut bug: committing one mapping rewrote the whole
        // metadata view. With the journal, a one-mapping commit must write
        // a bounded number of metadata blocks regardless of pool history.
        let data: SharedDevice = Arc::new(MemDisk::with_default_timing(4096, 512));
        let meta_disk = Arc::new(MemDisk::with_default_timing(128, 512));
        let p = ThinPool::create_seeded(
            data,
            meta_disk.clone() as SharedDevice,
            PoolConfig::new(4),
            AllocStrategy::Random, // fragmented: the full view is large
            7,
        )
        .unwrap();
        let v = p.create_volume(1, 2048).unwrap();
        let buf = vec![0x11u8; 512];
        for i in 0..512u64 {
            v.write_block(i, &buf).unwrap();
        }
        p.commit().unwrap();

        // One-mapping transaction: journal record + superblock only.
        v.write_block(1500, &buf).unwrap();
        let before = meta_disk.stats();
        p.commit().unwrap();
        let journaled = meta_disk.stats().delta_since(&before);
        assert!(
            journaled.bytes_written() <= 2 * 512,
            "one-mapping commit wrote {} bytes (expected ≤ 2 blocks)",
            journaled.bytes_written()
        );

        // The full cut of the same pool is an order of magnitude bigger.
        let before = meta_disk.stats();
        p.checkpoint().unwrap();
        let full_cut = meta_disk.stats().delta_since(&before);
        assert!(
            full_cut.bytes_written() >= 8 * journaled.bytes_written(),
            "full cut {} vs journaled {} bytes",
            full_cut.bytes_written(),
            journaled.bytes_written()
        );
    }

    #[test]
    fn journal_overflow_falls_back_to_checkpoint() {
        // Keep committing until the journal region fills: commit() must
        // fold into a checkpoint (journal reset) and every state survives
        // reopen at every step.
        let (data, meta) = devices(256, 64); // journal region: 7 blocks
        let p = ThinPool::create(
            data.clone(),
            meta.clone(),
            PoolConfig::new(4),
            AllocStrategy::Sequential,
        )
        .unwrap();
        let v = p.create_volume(1, 200).unwrap();
        let buf = vec![0x42u8; 512];
        for i in 0..24u64 {
            v.write_block(i, &buf).unwrap();
            p.commit().unwrap();
            let p2 = ThinPool::open(
                data.clone(),
                meta.clone(),
                PoolConfig::new(4),
                AllocStrategy::Sequential,
                0,
            )
            .unwrap();
            assert_eq!(
                p2.volume_mapped_blocks(1),
                i + 1,
                "reopen after commit {i} must see every committed mapping"
            );
        }
    }

    #[test]
    fn journaled_volume_lifecycle_survives_reopen() {
        // Create/delete/re-create inside journaled transactions: replay
        // must reproduce the exact lifecycle, including freed blocks.
        let (data, meta) = devices(256, 128);
        let p = ThinPool::create(
            data.clone(),
            meta.clone(),
            PoolConfig::new(8),
            AllocStrategy::Sequential,
        )
        .unwrap();
        let a = p.create_volume(1, 100).unwrap();
        a.write_block(0, &vec![0xAA; 512]).unwrap();
        a.write_block(1, &vec![0xAB; 512]).unwrap();
        p.commit().unwrap();
        // Delete the committed volume and re-create the id, all in one
        // transaction.
        p.delete_volume(1).unwrap();
        let b = p.create_volume(1, 50).unwrap();
        b.write_block(5, &vec![0xBB; 512]).unwrap();
        p.commit().unwrap();
        drop((p, a, b));

        let p2 = ThinPool::open(
            data.clone(),
            meta.clone(),
            PoolConfig::new(8),
            AllocStrategy::Sequential,
            0,
        )
        .unwrap();
        let v = p2.open_volume(1).unwrap();
        assert_eq!(v.num_blocks(), 50, "replay must surface the re-created volume");
        assert_eq!(v.read_block(5).unwrap(), vec![0xBB; 512]);
        assert_eq!(v.read_block(0).unwrap(), vec![0u8; 512], "old volume's data unmapped");
        assert_eq!(p2.allocated_blocks(), 1, "old volume's blocks freed by replay");
    }

    #[test]
    fn discard_of_committed_mapping_replays_as_free() {
        let (data, meta) = devices(256, 128);
        let p = ThinPool::create(
            data.clone(),
            meta.clone(),
            PoolConfig::new(4),
            AllocStrategy::Sequential,
        )
        .unwrap();
        let v = p.create_volume(1, 100).unwrap();
        v.write_block(3, &vec![1u8; 512]).unwrap();
        v.write_block(4, &vec![2u8; 512]).unwrap();
        p.commit().unwrap();
        p.discard(1, 3).unwrap();
        p.commit().unwrap();
        drop((p, v));
        let p2 =
            ThinPool::open(data, meta, PoolConfig::new(4), AllocStrategy::Sequential, 0).unwrap();
        let v2 = p2.open_volume(1).unwrap();
        assert_eq!(v2.read_block(3).unwrap(), vec![0u8; 512], "discard journaled");
        assert_eq!(v2.read_block(4).unwrap(), vec![2u8; 512]);
        assert_eq!(p2.allocated_blocks(), 1);
    }
}
