//! The metadata journal and its transaction manager.
//!
//! Between checkpoints (full [`crate::MetadataView`] cuts to a shadow
//! half), every `commit()` appends one checksummed [`JournalRecord`] to a
//! dedicated journal region of the metadata device and then rewrites the
//! superblock. The superblock names the committed journal extent
//! (`journal_blocks`), so the commit point is still a single superblock
//! write: journal blocks that landed without their superblock — a torn
//! commit — sit beyond the committed extent and are ignored on replay.
//!
//! A record carries the *delta* of one transaction as [`DeltaOp`]s:
//! volume creates/deletes, mapping extents set/removed, and bitmap blocks
//! allocated/freed. Replay applies records in sequence order on top of
//! the checkpoint view. Every op is idempotent on mapping and bitmap
//! state (`insert_run` overwrites, `remove_run`/`clear` no-op on absent
//! state), and the sequence numbers are checked to be exactly
//! `checkpoint_txid + 1 ..= transaction_id`, so replay of a valid journal
//! is deterministic and repeatable.
//!
//! Record layout (padded to whole metadata blocks):
//!
//! ```text
//! magic "MCJR" (4) | seq (8 LE) | payload_len (8 LE) | sha256(payload) (32)
//! payload: op_count (8 LE) | ops...
//! ```

use crate::extent::Extent;
use mobiceal_blockdev::{BlockDevice, BlockDeviceError, BlockIndex, SharedDevice};
use mobiceal_crypto::sha256;

/// Magic prefix of every journal record header.
pub const RECORD_MAGIC: &[u8; 4] = b"MCJR";

/// Fixed record header size: magic + seq + payload_len + digest.
const HEADER_LEN: usize = 4 + 8 + 8 + 32;

/// One state transition inside a journaled transaction.
///
/// Replay order within a record is meaningful: volume lifecycle ops come
/// first, then mapping deltas, then bitmap deltas (frees before allocs, so
/// a block freed and re-allocated in one transaction ends up set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// A volume came into existence (empty) this transaction.
    CreateVolume {
        /// Volume id.
        id: u32,
        /// Provisioned size in blocks.
        virtual_blocks: u64,
    },
    /// A volume was deleted this transaction (its block frees are
    /// journaled separately as [`DeltaOp::Free`]).
    DeleteVolume {
        /// Volume id.
        id: u32,
    },
    /// A run of mappings was established (coalesced insert deltas).
    SetMapping {
        /// Volume id.
        id: u32,
        /// The mapped run.
        extent: Extent,
    },
    /// A run of virtual blocks was unmapped (discard / rollback).
    RemoveMapping {
        /// Volume id.
        id: u32,
        /// First virtual block of the run.
        virt_begin: u64,
        /// Run length in blocks.
        len: u64,
    },
    /// A physical block became allocated in the committed bitmap.
    Alloc {
        /// Physical (data-device) block.
        block: u64,
    },
    /// A physical block became free in the committed bitmap.
    Free {
        /// Physical (data-device) block.
        block: u64,
    },
    /// A named scalar register. The pool never emits these; journal
    /// consumers outside the pool (the baseline stores) persist their log
    /// heads, epochs and cursors with them.
    Register {
        /// Consumer-defined register id.
        key: u32,
        /// Register value.
        value: u64,
    },
}

/// Decodes a little-endian `u32` from an exact-length field, surfacing a
/// short slice as corrupt metadata instead of panicking.
fn le_u32(bytes: &[u8]) -> Result<u32, BlockDeviceError> {
    let arr = bytes
        .try_into()
        .map_err(|_| BlockDeviceError::CorruptMetadata { detail: "short u32 field".into() })?;
    Ok(u32::from_le_bytes(arr))
}

/// [`le_u32`] for `u64` fields.
fn le_u64(bytes: &[u8]) -> Result<u64, BlockDeviceError> {
    let arr = bytes
        .try_into()
        .map_err(|_| BlockDeviceError::CorruptMetadata { detail: "short u64 field".into() })?;
    Ok(u64::from_le_bytes(arr))
}

impl DeltaOp {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            DeltaOp::CreateVolume { id, virtual_blocks } => {
                out.push(0);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&virtual_blocks.to_le_bytes());
            }
            DeltaOp::DeleteVolume { id } => {
                out.push(1);
                out.extend_from_slice(&id.to_le_bytes());
            }
            DeltaOp::SetMapping { id, extent } => {
                out.push(2);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&extent.virt_begin.to_le_bytes());
                out.extend_from_slice(&extent.data_begin.to_le_bytes());
                out.extend_from_slice(&extent.len.to_le_bytes());
            }
            DeltaOp::RemoveMapping { id, virt_begin, len } => {
                out.push(3);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&virt_begin.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            DeltaOp::Alloc { block } => {
                out.push(4);
                out.extend_from_slice(&block.to_le_bytes());
            }
            DeltaOp::Free { block } => {
                out.push(5);
                out.extend_from_slice(&block.to_le_bytes());
            }
            DeltaOp::Register { key, value } => {
                out.push(6);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
            }
        }
    }

    fn decode(data: &[u8], pos: &mut usize) -> Result<Self, BlockDeviceError> {
        let corrupt = |detail: &str| BlockDeviceError::CorruptMetadata { detail: detail.into() };
        let mut take = |n: usize| -> Result<&[u8], BlockDeviceError> {
            if *pos + n > data.len() {
                return Err(corrupt("truncated journal op"));
            }
            let s = &data[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let tag = take(1)?[0];
        let op = match tag {
            0 => DeltaOp::CreateVolume { id: le_u32(take(4)?)?, virtual_blocks: le_u64(take(8)?)? },
            1 => DeltaOp::DeleteVolume { id: le_u32(take(4)?)? },
            2 => DeltaOp::SetMapping {
                id: le_u32(take(4)?)?,
                extent: Extent {
                    virt_begin: le_u64(take(8)?)?,
                    data_begin: le_u64(take(8)?)?,
                    len: le_u64(take(8)?)?,
                },
            },
            3 => DeltaOp::RemoveMapping {
                id: le_u32(take(4)?)?,
                virt_begin: le_u64(take(8)?)?,
                len: le_u64(take(8)?)?,
            },
            4 => DeltaOp::Alloc { block: le_u64(take(8)?)? },
            5 => DeltaOp::Free { block: le_u64(take(8)?)? },
            6 => DeltaOp::Register { key: le_u32(take(4)?)?, value: le_u64(take(8)?)? },
            _ => return Err(corrupt("unknown journal op tag")),
        };
        Ok(op)
    }
}

/// One committed transaction's delta, as journaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Transaction id this record commits (superblock `transaction_id`
    /// after the commit).
    pub seq: u64,
    /// The transaction's state transitions, in replay order.
    pub ops: Vec<DeltaOp>,
}

impl JournalRecord {
    /// Serializes header + payload (unpadded).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(self.ops.len() as u64).to_le_bytes());
        for op in &self.ops {
            op.encode_into(&mut payload);
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(RECORD_MAGIC);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&Self::digest(self.seq, &payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Record digest: covers the sequence number and the payload, so a
    /// corrupted seq is caught by the checksum, not just the replay
    /// sequence check.
    fn digest(seq: u64, payload: &[u8]) -> [u8; 32] {
        let mut buf = Vec::with_capacity(8 + payload.len());
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(payload);
        sha256(&buf)
    }

    /// Parses one record from the head of `data`, returning it together
    /// with the number of bytes consumed (header + payload, unpadded).
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::CorruptMetadata`] on bad magic, truncation or
    /// digest mismatch.
    pub fn decode(data: &[u8]) -> Result<(Self, usize), BlockDeviceError> {
        let corrupt = |detail: &str| BlockDeviceError::CorruptMetadata { detail: detail.into() };
        if data.len() < HEADER_LEN {
            return Err(corrupt("truncated journal record header"));
        }
        if &data[..4] != RECORD_MAGIC {
            return Err(corrupt("bad journal record magic"));
        }
        let seq = le_u64(&data[4..12])?;
        let payload_len = le_u64(&data[12..20])? as usize;
        let digest: [u8; 32] = data[20..52].try_into().map_err(|_| {
            BlockDeviceError::CorruptMetadata { detail: "short digest field".into() }
        })?;
        if data.len() < HEADER_LEN + payload_len {
            return Err(corrupt("truncated journal record payload"));
        }
        let payload = &data[HEADER_LEN..HEADER_LEN + payload_len];
        if Self::digest(seq, payload) != digest {
            return Err(corrupt("journal record digest mismatch"));
        }
        let mut pos = 0usize;
        let take8 = |pos: &mut usize| -> Result<u64, BlockDeviceError> {
            if *pos + 8 > payload.len() {
                return Err(corrupt("truncated journal op count"));
            }
            let v = le_u64(&payload[*pos..*pos + 8])?;
            *pos += 8;
            Ok(v)
        };
        let op_count = take8(&mut pos)?;
        let mut ops = Vec::with_capacity(op_count as usize);
        for _ in 0..op_count {
            ops.push(DeltaOp::decode(payload, &mut pos)?);
        }
        if pos != payload.len() {
            return Err(corrupt("trailing bytes in journal record payload"));
        }
        Ok((JournalRecord { seq, ops }, HEADER_LEN + payload_len))
    }
}

/// Placement of the journal region on the metadata device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// First metadata block of the journal region.
    pub first_block: u64,
    /// Region size in blocks.
    pub blocks: u64,
}

/// Appends and replays journal records on a metadata device.
///
/// The manager does not decide commit points — the pool's superblock does
/// (it names the committed journal extent). The manager only performs the
/// block-aligned append and the sequence-checked replay.
pub struct TransactionManager {
    meta: SharedDevice,
    cfg: JournalConfig,
}

impl TransactionManager {
    /// A manager for the given device region.
    pub fn new(meta: SharedDevice, cfg: JournalConfig) -> Self {
        TransactionManager { meta, cfg }
    }

    /// The region this manager appends into.
    pub fn config(&self) -> JournalConfig {
        self.cfg
    }

    /// Blocks `record` occupies on disk (records are block-aligned).
    pub fn record_blocks(&self, record: &JournalRecord) -> u64 {
        record.to_bytes().len().div_ceil(self.meta.block_size()) as u64
    }

    /// Appends `record` after `used` already-committed journal blocks and
    /// flushes. Returns the new used-block count for the superblock.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::NoSpace`] if the record does not fit in the
    /// remaining region (the caller should checkpoint instead); device
    /// errors otherwise. On error nothing is committed — the superblock
    /// still names the old extent, so a partial append is rolled back by
    /// replay ignoring it.
    pub fn append(&self, used: u64, record: &JournalRecord) -> Result<u64, BlockDeviceError> {
        let bytes = record.to_bytes();
        let bs = self.meta.block_size();
        let need = bytes.len().div_ceil(bs) as u64;
        if used + need > self.cfg.blocks {
            return Err(BlockDeviceError::NoSpace);
        }
        let blocks: Vec<Vec<u8>> = (0..need)
            .map(|i| {
                let mut block = vec![0u8; bs];
                let lo = i as usize * bs;
                let hi = (lo + bs).min(bytes.len());
                block[..hi - lo].copy_from_slice(&bytes[lo..hi]);
                block
            })
            .collect();
        let start = self.cfg.first_block + used;
        let writes: Vec<(BlockIndex, &[u8])> =
            blocks.iter().enumerate().map(|(i, b)| (start + i as u64, b.as_slice())).collect();
        self.meta.write_blocks(&writes)?;
        self.meta.flush()?;
        Ok(used + need)
    }

    /// Reads back the committed journal extent (`used` blocks) and parses
    /// the records `first_seq ..= last_seq` in order.
    ///
    /// The read is one vectored crossing whose size depends only on the
    /// journal extent — never on which volume the records touch — so
    /// replay charges world-independent time for identical journal shapes.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::CorruptMetadata`] if records are missing,
    /// out of sequence, or fail their digests.
    pub fn replay(
        &self,
        used: u64,
        first_seq: u64,
        last_seq: u64,
    ) -> Result<Vec<JournalRecord>, BlockDeviceError> {
        let corrupt = |detail: &str| BlockDeviceError::CorruptMetadata { detail: detail.into() };
        if used > self.cfg.blocks {
            return Err(corrupt("journal extent larger than region"));
        }
        let expected = if last_seq >= first_seq { last_seq - first_seq + 1 } else { 0 };
        if used == 0 {
            return if expected == 0 {
                Ok(Vec::new())
            } else {
                Err(corrupt("journal records missing"))
            };
        }
        let bs = self.meta.block_size();
        let indices: Vec<u64> = (0..used).map(|i| self.cfg.first_block + i).collect();
        let mut data = Vec::with_capacity(used as usize * bs);
        for block in self.meta.read_blocks(&indices)? {
            data.extend_from_slice(&block);
        }
        let mut records = Vec::with_capacity(expected as usize);
        let mut offset = 0usize;
        for seq in first_seq..=last_seq {
            if offset >= data.len() {
                return Err(corrupt("journal records missing"));
            }
            let (record, consumed) = JournalRecord::decode(&data[offset..])?;
            if record.seq != seq {
                return Err(corrupt("journal record out of sequence"));
            }
            records.push(record);
            offset += consumed.div_ceil(bs) * bs;
        }
        if offset != used as usize * bs {
            return Err(corrupt("journal extent longer than its records"));
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;
    use std::sync::Arc;

    fn sample_ops() -> Vec<DeltaOp> {
        vec![
            DeltaOp::CreateVolume { id: 1, virtual_blocks: 64 },
            DeltaOp::SetMapping {
                id: 1,
                extent: Extent { virt_begin: 0, data_begin: 100, len: 8 },
            },
            DeltaOp::RemoveMapping { id: 1, virt_begin: 3, len: 1 },
            DeltaOp::Alloc { block: 100 },
            DeltaOp::Free { block: 9 },
            DeltaOp::DeleteVolume { id: 2 },
            DeltaOp::Register { key: 3, value: 0xDEAD },
        ]
    }

    #[test]
    fn record_roundtrip() {
        let rec = JournalRecord { seq: 7, ops: sample_ops() };
        let bytes = rec.to_bytes();
        let (back, consumed) = JournalRecord::decode(&bytes).unwrap();
        assert_eq!(back, rec);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn record_rejects_corruption() {
        let rec = JournalRecord { seq: 7, ops: sample_ops() };
        let bytes = rec.to_bytes();
        for i in [0usize, 5, 25, HEADER_LEN, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(JournalRecord::decode(&bad).is_err(), "flip at {i} must fail");
        }
        assert!(JournalRecord::decode(&bytes[..HEADER_LEN - 1]).is_err());
        assert!(JournalRecord::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn append_and_replay_sequence() {
        let meta: SharedDevice = Arc::new(MemDisk::with_default_timing(64, 512));
        let tm = TransactionManager::new(meta, JournalConfig { first_block: 1, blocks: 16 });
        let mut used = 0;
        for seq in 3..6u64 {
            let rec = JournalRecord { seq, ops: sample_ops() };
            used = tm.append(used, &rec).unwrap();
        }
        let records = tm.replay(used, 3, 5).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].seq, 3);
        assert_eq!(records[2].seq, 5);
        assert_eq!(records[1].ops, sample_ops());
        // Asking for a different window fails the sequence check.
        assert!(tm.replay(used, 2, 5).is_err());
        assert!(tm.replay(used, 3, 6).is_err());
        assert!(tm.replay(used, 3, 4).is_err(), "extent longer than its records");
    }

    #[test]
    fn append_rejects_overflow() {
        let meta: SharedDevice = Arc::new(MemDisk::with_default_timing(64, 512));
        let tm = TransactionManager::new(meta, JournalConfig { first_block: 1, blocks: 2 });
        let rec = JournalRecord { seq: 1, ops: sample_ops() };
        let used = tm.append(0, &rec).unwrap();
        assert_eq!(used, 1);
        let used = tm.append(used, &JournalRecord { seq: 2, ops: sample_ops() }).unwrap();
        assert!(matches!(
            tm.append(used, &JournalRecord { seq: 3, ops: vec![] }),
            Err(BlockDeviceError::NoSpace)
        ));
    }

    #[test]
    fn replay_of_empty_journal() {
        let meta: SharedDevice = Arc::new(MemDisk::with_default_timing(64, 512));
        let tm = TransactionManager::new(meta, JournalConfig { first_block: 1, blocks: 16 });
        // No records expected: seq window empty (first > last).
        assert!(tm.replay(0, 1, 0).unwrap().is_empty());
        // Records expected but extent empty: corrupt.
        assert!(tm.replay(0, 1, 1).is_err());
    }

    #[test]
    fn uncommitted_tail_is_ignored() {
        // An append whose superblock never landed: replay with the *old*
        // used count never reads the torn tail.
        let meta: SharedDevice = Arc::new(MemDisk::with_default_timing(64, 512));
        let tm = TransactionManager::new(meta, JournalConfig { first_block: 1, blocks: 16 });
        let used = tm.append(0, &JournalRecord { seq: 1, ops: sample_ops() }).unwrap();
        // Torn: record 2 lands, superblock (and its new used count) lost.
        let _ = tm.append(used, &JournalRecord { seq: 2, ops: sample_ops() }).unwrap();
        let records = tm.replay(used, 1, 1).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 1);
    }
}
