//! Run-length extent mapping: virtual → physical block runs.
//!
//! Real dm-thin maps block ranges, not single blocks: `Map { virt_begin,
//! data_begin, len }` describes `len` contiguous virtual blocks backed by
//! `len` contiguous physical blocks. Sequential traffic collapses into a
//! handful of extents (~64x smaller serialized metadata than per-block
//! entries), while MobiCeal's random allocator degenerates gracefully to
//! one-block extents. [`ExtentMap`] keeps the per-block semantics of the
//! old `BTreeMap<u64, u64>` mapping table — lookup, insert, remove — while
//! storing runs: inserts merge into adjacent extents when both the virtual
//! and physical sides are contiguous, and removing a block from the middle
//! of a run splits it.

use std::collections::BTreeMap;

/// One mapping run: `len` virtual blocks starting at `virt_begin`, backed
/// by `len` physical blocks starting at `data_begin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First virtual block of the run.
    pub virt_begin: u64,
    /// First physical (data-device) block of the run.
    pub data_begin: u64,
    /// Run length in blocks (always ≥ 1).
    pub len: u64,
}

impl Extent {
    /// The physical block backing `vblock`, if this run covers it.
    fn lookup(&self, vblock: u64) -> Option<u64> {
        if vblock >= self.virt_begin && vblock < self.virt_begin + self.len {
            Some(self.data_begin + (vblock - self.virt_begin))
        } else {
            None
        }
    }
}

/// A virtual → physical mapping table stored as run-length extents.
///
/// Per-block view (iteration, lookup, equality) is identical to a
/// `BTreeMap<u64, u64>` of (virtual, physical) pairs; the extent view
/// ([`ExtentMap::extents`]) is what the on-disk format serializes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtentMap {
    /// virt_begin → (data_begin, len), non-overlapping, never adjacent
    /// when mergeable (canonical form: two neighbours are only kept
    /// separate when their virtual or physical runs do not touch).
    runs: BTreeMap<u64, (u64, u64)>,
    /// Total mapped blocks (sum of run lengths), cached.
    mapped: u64,
}

impl ExtentMap {
    /// An empty mapping table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped virtual blocks.
    pub fn len(&self) -> usize {
        self.mapped as usize
    }

    /// Whether nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.mapped == 0
    }

    /// Number of extents (runs) in canonical form.
    pub fn extent_count(&self) -> usize {
        self.runs.len()
    }

    /// The run covering `vblock`, if any.
    fn run_over(&self, vblock: u64) -> Option<Extent> {
        let (&virt_begin, &(data_begin, len)) = self.runs.range(..=vblock).next_back()?;
        let e = Extent { virt_begin, data_begin, len };
        e.lookup(vblock).map(|_| e)
    }

    /// The physical block backing `vblock`, if mapped.
    ///
    /// Takes `&u64` (like `BTreeMap::get`) but returns the block by value.
    pub fn get(&self, vblock: &u64) -> Option<u64> {
        self.run_over(*vblock).and_then(|e| e.lookup(*vblock))
    }

    /// Whether `vblock` is mapped.
    pub fn contains_key(&self, vblock: &u64) -> bool {
        self.get(vblock).is_some()
    }

    /// Maps `vblock` to `physical`, returning the previous backing block if
    /// one existed. Merges into the left/right neighbouring runs when both
    /// the virtual and physical sides are contiguous.
    pub fn insert(&mut self, vblock: u64, physical: u64) -> Option<u64> {
        let old = self.remove(&vblock);
        // Left neighbour: a run ending exactly at (vblock, physical).
        let left = self
            .runs
            .range(..vblock)
            .next_back()
            .map(|(&v, &(d, l))| (v, d, l))
            .filter(|&(v, d, l)| v + l == vblock && d + l == physical);
        // Right neighbour: a run starting exactly at (vblock + 1,
        // physical + 1).
        let right =
            self.runs.get(&(vblock + 1)).map(|&(d, l)| (d, l)).filter(|&(d, _)| d == physical + 1);
        match (left, right) {
            (Some((lv, _, ll)), Some((_, rl))) => {
                self.runs.remove(&(vblock + 1));
                self.runs.get_mut(&lv).expect("left run exists").1 = ll + 1 + rl;
            }
            (Some((lv, _, ll)), None) => {
                self.runs.get_mut(&lv).expect("left run exists").1 = ll + 1;
            }
            (None, Some((_, rl))) => {
                self.runs.remove(&(vblock + 1));
                self.runs.insert(vblock, (physical, rl + 1));
            }
            (None, None) => {
                self.runs.insert(vblock, (physical, 1));
            }
        }
        self.mapped += 1;
        old
    }

    /// Unmaps `vblock`, returning the physical block that backed it.
    /// Removing from the middle of a run splits it in two.
    pub fn remove(&mut self, vblock: &u64) -> Option<u64> {
        let e = self.run_over(*vblock)?;
        let physical = e.lookup(*vblock).expect("run covers vblock");
        self.runs.remove(&e.virt_begin);
        let off = *vblock - e.virt_begin;
        if off > 0 {
            self.runs.insert(e.virt_begin, (e.data_begin, off));
        }
        if off + 1 < e.len {
            self.runs.insert(*vblock + 1, (e.data_begin + off + 1, e.len - off - 1));
        }
        self.mapped -= 1;
        Some(physical)
    }

    /// Per-block iteration in ascending virtual order: `(virtual, physical)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.runs.iter().flat_map(|(&v, &(d, len))| (0..len).map(move |i| (v + i, d + i)))
    }

    /// Mapped virtual blocks in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(v, _)| v)
    }

    /// Backing physical blocks, in ascending virtual order.
    pub fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(_, p)| p)
    }

    /// The extents in ascending virtual order (the serialized form).
    pub fn extents(&self) -> impl Iterator<Item = Extent> + '_ {
        self.runs.iter().map(|(&virt_begin, &(data_begin, len))| Extent {
            virt_begin,
            data_begin,
            len,
        })
    }

    /// Maps a whole run at once (replaying a journaled extent op). Existing
    /// mappings inside the run are overwritten.
    pub fn insert_run(&mut self, e: Extent) {
        for i in 0..e.len {
            self.insert(e.virt_begin + i, e.data_begin + i);
        }
    }

    /// Unmaps a whole virtual run (no-op where nothing is mapped).
    pub fn remove_run(&mut self, virt_begin: u64, len: u64) {
        for v in virt_begin..virt_begin + len {
            self.remove(&v);
        }
    }
}

impl FromIterator<(u64, u64)> for ExtentMap {
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        let mut map = ExtentMap::new();
        for (v, p) in iter {
            map.insert(v, p);
        }
        map
    }
}

impl From<BTreeMap<u64, u64>> for ExtentMap {
    fn from(m: BTreeMap<u64, u64>) -> Self {
        m.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_has_no_mappings() {
        let m = ExtentMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.extent_count(), 0);
        assert_eq!(m.get(&0), None);
        assert!(!m.contains_key(&0));
    }

    #[test]
    fn sequential_inserts_merge_into_one_extent() {
        let mut m = ExtentMap::new();
        for i in 0..64u64 {
            assert_eq!(m.insert(i, 100 + i), None);
        }
        assert_eq!(m.len(), 64);
        assert_eq!(m.extent_count(), 1, "sequential run must merge");
        let e: Vec<Extent> = m.extents().collect();
        assert_eq!(e, vec![Extent { virt_begin: 0, data_begin: 100, len: 64 }]);
        for i in 0..64u64 {
            assert_eq!(m.get(&i), Some(100 + i));
        }
    }

    #[test]
    fn merge_requires_both_sides_contiguous() {
        let mut m = ExtentMap::new();
        m.insert(0, 10);
        m.insert(1, 99); // virtual side contiguous, physical not
        assert_eq!(m.extent_count(), 2);
        m.insert(3, 12); // physical side would continue 10,11,12 but virtual skips 2
        assert_eq!(m.extent_count(), 3);
    }

    #[test]
    fn gap_fill_merges_left_and_right() {
        let mut m = ExtentMap::new();
        m.insert(0, 10);
        m.insert(2, 12);
        assert_eq!(m.extent_count(), 2);
        m.insert(1, 11); // bridges both neighbours
        assert_eq!(m.extent_count(), 1);
        assert_eq!(
            m.extents().collect::<Vec<_>>(),
            vec![Extent { virt_begin: 0, data_begin: 10, len: 3 }]
        );
    }

    #[test]
    fn remove_splits_a_run() {
        let mut m = ExtentMap::new();
        for i in 0..10u64 {
            m.insert(i, 50 + i);
        }
        assert_eq!(m.remove(&4), Some(54));
        assert_eq!(m.extent_count(), 2);
        assert_eq!(m.get(&4), None);
        assert_eq!(m.get(&3), Some(53));
        assert_eq!(m.get(&5), Some(55));
        assert_eq!(m.len(), 9);
        // Edges shrink instead of splitting.
        assert_eq!(m.remove(&0), Some(50));
        assert_eq!(m.remove(&9), Some(59));
        assert_eq!(m.extent_count(), 2);
        assert_eq!(m.len(), 7);
        assert_eq!(m.remove(&4), None, "double remove is a no-op");
    }

    #[test]
    fn overwrite_returns_previous_physical() {
        let mut m = ExtentMap::new();
        m.insert(5, 100);
        assert_eq!(m.insert(5, 200), Some(100));
        assert_eq!(m.get(&5), Some(200));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_matches_btreemap_order() {
        let pairs = [(7u64, 3u64), (0, 9), (1, 10), (2, 11), (50, 4)];
        let m: ExtentMap = pairs.iter().copied().collect();
        let reference: BTreeMap<u64, u64> = pairs.iter().copied().collect();
        assert_eq!(m.iter().collect::<Vec<_>>(), reference.into_iter().collect::<Vec<_>>());
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![0, 1, 2, 7, 50]);
        assert_eq!(m.values().collect::<Vec<_>>(), vec![9, 10, 11, 3, 4]);
    }

    #[test]
    fn insert_and_remove_runs() {
        let mut m = ExtentMap::new();
        m.insert_run(Extent { virt_begin: 4, data_begin: 40, len: 8 });
        assert_eq!(m.len(), 8);
        assert_eq!(m.extent_count(), 1);
        m.remove_run(6, 2);
        assert_eq!(m.len(), 6);
        assert_eq!(m.extent_count(), 2);
        m.remove_run(0, 100); // covers everything + unmapped space
        assert!(m.is_empty());
    }
}
