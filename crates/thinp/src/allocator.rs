//! Block allocation strategies.
//!
//! The stock `dm-thin` allocator hands out blocks **sequentially**, which is
//! what lets a multi-snapshot adversary correlate "one public block followed
//! by a long run of non-public blocks" with hidden writes (§IV-B of the
//! paper). MobiCeal's kernel modification replaces it with **random
//! allocation**: every write, from any volume, lands on a uniformly random
//! free block. Both strategies implement [`Allocator`] so the pool — and
//! every experiment — can swap them.

use crate::bitmap::Bitmap;
use mobiceal_crypto::ChaCha20Rng;
use std::collections::HashSet;

/// Strategy selector for [`crate::ThinPool`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocStrategy {
    /// Stock dm-thin behaviour: first-fit ascending. Used by the paper's
    /// A-T-P / A-T-H configurations and the MobiPluto baseline.
    Sequential,
    /// MobiCeal's modification (§IV-B): uniformly random free block.
    Random,
}

/// A block allocation policy over the pool's global bitmap.
///
/// Implementations must *not* mark the bitmap; the pool does that once the
/// allocation is accepted. `reserved` carries the blocks already allocated
/// inside the current transaction but not yet committed to the bitmap — the
/// "transaction problem" the paper fixes in §V-A ("the block numbers
/// allocated within a transaction are recorded").
pub trait Allocator: Send {
    /// Picks a free block, or `None` if the pool is exhausted.
    fn allocate(&mut self, bitmap: &Bitmap, reserved: &HashSet<u64>) -> Option<u64>;

    /// The strategy this allocator implements.
    fn strategy(&self) -> AllocStrategy;
}

/// First-fit ascending allocation with a roving cursor (stock dm-thin).
#[derive(Debug, Default)]
pub struct SequentialAllocator {
    cursor: u64,
}

impl SequentialAllocator {
    /// Creates an allocator scanning from block 0.
    pub fn new() -> Self {
        SequentialAllocator { cursor: 0 }
    }
}

impl Allocator for SequentialAllocator {
    fn allocate(&mut self, bitmap: &Bitmap, reserved: &HashSet<u64>) -> Option<u64> {
        if bitmap.free() as usize <= reserved.len() {
            return None;
        }
        let mut from = self.cursor;
        let mut wrapped = false;
        loop {
            match bitmap.first_free_from(from) {
                Some(block) if !reserved.contains(&block) => {
                    self.cursor = block + 1;
                    return Some(block);
                }
                Some(block) => {
                    from = block + 1;
                }
                None if !wrapped => {
                    wrapped = true;
                    from = 0;
                }
                None => return None,
            }
            if wrapped && from >= self.cursor && bitmap.first_free_from(from).is_none() {
                return None;
            }
        }
    }

    fn strategy(&self) -> AllocStrategy {
        AllocStrategy::Sequential
    }
}

/// Uniformly random allocation (MobiCeal, §IV-B and §V-A).
///
/// "We first obtain the number of free blocks (denoted by x), and then we
/// generate a random number i between 1 and x. The i-th free block is the
/// result." Blocks already reserved in the open transaction are skipped by
/// re-drawing, which resolves the paper's transaction problem.
pub struct RandomAllocator {
    rng: ChaCha20Rng,
}

impl std::fmt::Debug for RandomAllocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomAllocator").finish_non_exhaustive()
    }
}

impl RandomAllocator {
    /// Creates an allocator drawing from the given CSPRNG.
    pub fn new(rng: ChaCha20Rng) -> Self {
        RandomAllocator { rng }
    }

    /// Creates an allocator with a deterministic seed (tests, experiments).
    pub fn with_seed(seed: u64) -> Self {
        RandomAllocator { rng: ChaCha20Rng::from_u64_seed(seed) }
    }
}

impl Allocator for RandomAllocator {
    fn allocate(&mut self, bitmap: &Bitmap, reserved: &HashSet<u64>) -> Option<u64> {
        let free = bitmap.free();
        if free as usize <= reserved.len() {
            return None;
        }
        // Rejection-sample against the reservation set; the set is small
        // relative to free space in practice, so this terminates fast. Fall
        // back to linear enumeration if free space is nearly exhausted.
        for _ in 0..64 {
            let n = self.rng.next_below(free);
            let block = bitmap.nth_free(n).expect("nth_free within free count");
            if !reserved.contains(&block) {
                return Some(block);
            }
        }
        // Dense-reservation fallback: pick uniformly among the not-reserved
        // free blocks by enumeration.
        let candidates: Vec<u64> = (0..free)
            .filter_map(|n| bitmap.nth_free(n))
            .filter(|b| !reserved.contains(b))
            .collect();
        if candidates.is_empty() {
            None
        } else {
            let pick = self.rng.next_below(candidates.len() as u64) as usize;
            Some(candidates[pick])
        }
    }

    fn strategy(&self) -> AllocStrategy {
        AllocStrategy::Random
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_reserved() -> HashSet<u64> {
        HashSet::new()
    }

    #[test]
    fn sequential_allocates_ascending() {
        // Even without bitmap marks, the roving cursor advances — matching
        // dm-thin's behaviour of not reusing an address inside one burst.
        let bitmap = Bitmap::new(100);
        let mut alloc = SequentialAllocator::new();
        let picks: Vec<u64> =
            (0..5).map(|_| alloc.allocate(&bitmap, &no_reserved()).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sequential_respects_bitmap_and_cursor() {
        let mut bitmap = Bitmap::new(100);
        let mut alloc = SequentialAllocator::new();
        for expected in 0..10u64 {
            let b = alloc.allocate(&bitmap, &no_reserved()).unwrap();
            assert_eq!(b, expected);
            bitmap.set(b);
        }
    }

    #[test]
    fn sequential_skips_reserved() {
        let bitmap = Bitmap::new(10);
        let mut alloc = SequentialAllocator::new();
        let reserved: HashSet<u64> = [0u64, 1, 2].into_iter().collect();
        assert_eq!(alloc.allocate(&bitmap, &reserved), Some(3));
    }

    #[test]
    fn sequential_wraps_around() {
        let mut bitmap = Bitmap::new(10);
        let mut alloc = SequentialAllocator::new();
        for _ in 0..10 {
            let b = alloc.allocate(&bitmap, &no_reserved()).unwrap();
            bitmap.set(b);
        }
        assert_eq!(alloc.allocate(&bitmap, &no_reserved()), None);
        bitmap.clear(3);
        assert_eq!(alloc.allocate(&bitmap, &no_reserved()), Some(3));
    }

    #[test]
    fn random_allocates_free_nonreserved_blocks() {
        let mut bitmap = Bitmap::new(50);
        for i in 0..25 {
            bitmap.set(i * 2); // even blocks taken
        }
        let mut alloc = RandomAllocator::with_seed(1);
        let reserved: HashSet<u64> = [1u64, 3, 5].into_iter().collect();
        for _ in 0..100 {
            let b = alloc.allocate(&bitmap, &reserved).unwrap();
            assert!(b % 2 == 1, "only odd blocks are free, got {b}");
            assert!(!reserved.contains(&b));
        }
    }

    #[test]
    fn random_exhaustion_returns_none() {
        let mut bitmap = Bitmap::new(4);
        for i in 0..4 {
            bitmap.set(i);
        }
        let mut alloc = RandomAllocator::with_seed(2);
        assert_eq!(alloc.allocate(&bitmap, &no_reserved()), None);
    }

    #[test]
    fn random_with_everything_reserved_returns_none() {
        let bitmap = Bitmap::new(4);
        let reserved: HashSet<u64> = (0..4).collect();
        let mut alloc = RandomAllocator::with_seed(3);
        assert_eq!(alloc.allocate(&bitmap, &reserved), None);
    }

    #[test]
    fn random_dense_reservation_fallback_still_uniformish() {
        // Reserve all but 2 free blocks; the allocator must still find them.
        let bitmap = Bitmap::new(64);
        let reserved: HashSet<u64> = (0..62).collect();
        let mut alloc = RandomAllocator::with_seed(4);
        let mut seen = HashSet::new();
        for _ in 0..50 {
            seen.insert(alloc.allocate(&bitmap, &reserved).unwrap());
        }
        assert_eq!(seen, [62u64, 63].into_iter().collect());
    }

    #[test]
    fn random_spreads_across_disk() {
        // With 1000 free blocks, 100 draws should not cluster at the front
        // (that's the sequential signature the adversary exploits).
        let bitmap = Bitmap::new(1000);
        let mut alloc = RandomAllocator::with_seed(5);
        let picks: Vec<u64> =
            (0..100).map(|_| alloc.allocate(&bitmap, &no_reserved()).unwrap()).collect();
        let in_back_half = picks.iter().filter(|&&b| b >= 500).count();
        assert!(
            (25..=75).contains(&in_back_half),
            "expected roughly half in back half, got {in_back_half}"
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let bitmap = Bitmap::new(100);
        let picks = |seed| {
            let mut alloc = RandomAllocator::with_seed(seed);
            (0..10).map(|_| alloc.allocate(&bitmap, &no_reserved()).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
    }

    #[test]
    fn strategies_report_identity() {
        assert_eq!(SequentialAllocator::new().strategy(), AllocStrategy::Sequential);
        assert_eq!(RandomAllocator::with_seed(0).strategy(), AllocStrategy::Random);
    }
}
