//! Pool metadata: on-disk format and the adversary-visible view.
//!
//! The paper's storage layout (Fig. 3) keeps "the information of virtual
//! volumes, e.g. the global bitmap, the sizes and mappings of virtual
//! volumes" in a metadata area at a **known location** that the adversary
//! can read (§IV-B: "the system keeps the metadata in a known location and
//! the adversary can have access to them"). Deniability must therefore not
//! depend on hiding this structure — only on the hidden volume's metadata
//! being indistinguishable from a dummy volume's.
//!
//! Checkpoints are crash-consistent via A/B shadow areas: the payload is
//! written to the inactive half, then the superblock (which names the
//! active half and transaction id, and carries a SHA-256 of the payload)
//! is written last. Between checkpoints, commits append checksummed delta
//! records to the journal region (`crate::journal`); the superblock names
//! the committed journal extent, so a torn commit — journal blocks that
//! landed without their superblock — rolls back to the previous
//! transaction on replay. Mappings are serialized as run-length extents
//! (`virt_begin, data_begin, len`), so sequential traffic costs a handful
//! of triples instead of an entry per block.

use crate::bitmap::Bitmap;
use crate::extent::{Extent, ExtentMap};
use mobiceal_blockdev::BlockDeviceError;
use std::collections::BTreeMap;

/// Magic identifying a MobiCeal-thin superblock.
pub const SUPERBLOCK_MAGIC: &[u8; 8] = b"MCTHNP02";

/// On-disk version understood by this implementation (2: extent-based
/// mappings, journal region between superblock and shadow halves).
pub const FORMAT_VERSION: u32 = 2;

/// Per-volume metadata as persisted and as visible to the adversary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeMeta {
    /// Volume identifier (V1 = public in MobiCeal's convention).
    pub id: u32,
    /// Provisioned (virtual) size in blocks.
    pub virtual_blocks: u64,
    /// virtual block → physical block, stored as run-length extents.
    pub mappings: ExtentMap,
}

/// Everything stored in the metadata area, decoded.
///
/// Handing this to the adversary models its full metadata access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetadataView {
    /// Transaction id of the commit this view reflects.
    pub transaction_id: u64,
    /// The global free-space bitmap.
    pub bitmap: Bitmap,
    /// All volumes, by id.
    pub volumes: BTreeMap<u32, VolumeMeta>,
}

/// Decodes a little-endian `u32` from an exact-length field, surfacing a
/// short slice as corrupt metadata instead of panicking.
fn le_u32(bytes: &[u8]) -> Result<u32, BlockDeviceError> {
    let arr = bytes
        .try_into()
        .map_err(|_| BlockDeviceError::CorruptMetadata { detail: "short u32 field".into() })?;
    Ok(u32::from_le_bytes(arr))
}

/// [`le_u32`] for `u64` fields.
fn le_u64(bytes: &[u8]) -> Result<u64, BlockDeviceError> {
    let arr = bytes
        .try_into()
        .map_err(|_| BlockDeviceError::CorruptMetadata { detail: "short u64 field".into() })?;
    Ok(u64::from_le_bytes(arr))
}

impl MetadataView {
    /// Total physical blocks mapped by volume `id` (0 if absent).
    pub fn mapped_blocks(&self, id: u32) -> u64 {
        self.volumes.get(&id).map(|v| v.mappings.len() as u64).unwrap_or(0)
    }

    /// Serializes to the on-disk payload format (extent triples per
    /// volume).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.transaction_id.to_le_bytes());
        let bm = self.bitmap.to_bytes();
        out.extend_from_slice(&(bm.len() as u64).to_le_bytes());
        out.extend_from_slice(&bm);
        out.extend_from_slice(&(self.volumes.len() as u32).to_le_bytes());
        for vol in self.volumes.values() {
            out.extend_from_slice(&vol.id.to_le_bytes());
            out.extend_from_slice(&vol.virtual_blocks.to_le_bytes());
            out.extend_from_slice(&(vol.mappings.extent_count() as u64).to_le_bytes());
            for e in vol.mappings.extents() {
                out.extend_from_slice(&e.virt_begin.to_le_bytes());
                out.extend_from_slice(&e.data_begin.to_le_bytes());
                out.extend_from_slice(&e.len.to_le_bytes());
            }
        }
        out
    }

    /// Parses the on-disk payload format.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::CorruptMetadata`] on any structural problem.
    pub fn from_bytes(data: &[u8]) -> Result<Self, BlockDeviceError> {
        let corrupt = |detail: &str| BlockDeviceError::CorruptMetadata { detail: detail.into() };
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], BlockDeviceError> {
            if pos + n > data.len() {
                return Err(corrupt("truncated payload"));
            }
            let s = &data[pos..pos + n];
            pos += n;
            Ok(s)
        };
        let transaction_id = le_u64(take(8)?)?;
        let bm_len = le_u64(take(8)?)? as usize;
        let bitmap =
            Bitmap::from_bytes(take(bm_len)?).ok_or_else(|| corrupt("bad bitmap encoding"))?;
        let vol_count = le_u32(take(4)?)?;
        let mut volumes = BTreeMap::new();
        for _ in 0..vol_count {
            let id = le_u32(take(4)?)?;
            let virtual_blocks = le_u64(take(8)?)?;
            let extent_count = le_u64(take(8)?)?;
            let mut mappings = ExtentMap::new();
            let mut total = 0u64;
            for _ in 0..extent_count {
                let virt_begin = le_u64(take(8)?)?;
                let data_begin = le_u64(take(8)?)?;
                let len = le_u64(take(8)?)?;
                if len == 0 {
                    return Err(corrupt("zero-length extent"));
                }
                let virt_end = virt_begin
                    .checked_add(len)
                    .ok_or_else(|| corrupt("extent virtual range overflows"))?;
                let data_end = data_begin
                    .checked_add(len)
                    .ok_or_else(|| corrupt("extent data range overflows"))?;
                if virt_end > virtual_blocks {
                    return Err(corrupt("mapping beyond virtual size"));
                }
                if data_end > bitmap.len() {
                    return Err(corrupt("mapping beyond data device"));
                }
                mappings.insert_run(Extent { virt_begin, data_begin, len });
                total += len;
            }
            if mappings.len() as u64 != total {
                return Err(corrupt("duplicate virtual block mapping"));
            }
            if volumes.insert(id, VolumeMeta { id, virtual_blocks, mappings }).is_some() {
                return Err(corrupt("duplicate volume id"));
            }
        }
        Ok(MetadataView { transaction_id, bitmap, volumes })
    }
}

/// Superblock contents (always block 0 of the metadata device).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// Monotonic commit counter (checkpoint + replayed journal records).
    pub transaction_id: u64,
    /// Which shadow half (0 or 1) holds the checkpoint payload.
    pub active_half: u8,
    /// Byte length of the checkpoint payload in the active half.
    pub payload_len: u64,
    /// SHA-256 of the checkpoint payload.
    pub payload_digest: [u8; 32],
    /// Transaction id the checkpoint payload itself reflects. Journal
    /// records carry seqs `checkpoint_txid + 1 ..= transaction_id`.
    pub checkpoint_txid: u64,
    /// Committed journal extent in blocks (from the start of the journal
    /// region). Blocks beyond this are uncommitted appends — a torn
    /// commit — and are ignored on replay.
    pub journal_blocks: u64,
}

impl Superblock {
    /// Encodes into a metadata block (must be at least 77 bytes).
    ///
    /// # Panics
    ///
    /// Panics if `block` is too small.
    pub fn encode_into(&self, block: &mut [u8]) {
        assert!(block.len() >= 77, "superblock needs at least 77 bytes");
        block.fill(0);
        block[..8].copy_from_slice(SUPERBLOCK_MAGIC);
        block[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        block[12..20].copy_from_slice(&self.transaction_id.to_le_bytes());
        block[20] = self.active_half;
        block[21..29].copy_from_slice(&self.payload_len.to_le_bytes());
        block[29..61].copy_from_slice(&self.payload_digest);
        block[61..69].copy_from_slice(&self.checkpoint_txid.to_le_bytes());
        block[69..77].copy_from_slice(&self.journal_blocks.to_le_bytes());
    }

    /// Decodes from a metadata block.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::CorruptMetadata`] if the magic, version or shape
    /// is wrong.
    pub fn decode(block: &[u8]) -> Result<Self, BlockDeviceError> {
        let corrupt = |detail: &str| BlockDeviceError::CorruptMetadata { detail: detail.into() };
        if block.len() < 77 {
            return Err(corrupt("superblock block too small"));
        }
        if &block[..8] != SUPERBLOCK_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = le_u32(&block[8..12])?;
        if version != FORMAT_VERSION {
            return Err(corrupt("unsupported version"));
        }
        let transaction_id = le_u64(&block[12..20])?;
        let active_half = block[20];
        if active_half > 1 {
            return Err(corrupt("bad active half"));
        }
        let payload_len = le_u64(&block[21..29])?;
        let mut payload_digest = [0u8; 32];
        payload_digest.copy_from_slice(&block[29..61]);
        let checkpoint_txid = le_u64(&block[61..69])?;
        let journal_blocks = le_u64(&block[69..77])?;
        if checkpoint_txid > transaction_id {
            return Err(corrupt("checkpoint ahead of transaction id"));
        }
        Ok(Superblock {
            transaction_id,
            active_half,
            payload_len,
            payload_digest,
            checkpoint_txid,
            journal_blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_view() -> MetadataView {
        let mut bitmap = Bitmap::new(128);
        bitmap.set(3);
        bitmap.set(77);
        let mut volumes = BTreeMap::new();
        let mut m1 = ExtentMap::new();
        m1.insert(0u64, 3u64);
        volumes.insert(1, VolumeMeta { id: 1, virtual_blocks: 64, mappings: m1 });
        let mut m2 = ExtentMap::new();
        m2.insert(9u64, 77u64);
        volumes.insert(2, VolumeMeta { id: 2, virtual_blocks: 64, mappings: m2 });
        MetadataView { transaction_id: 5, bitmap, volumes }
    }

    #[test]
    fn view_roundtrip() {
        let view = sample_view();
        let back = MetadataView::from_bytes(&view.to_bytes()).unwrap();
        assert_eq!(back, view);
        assert_eq!(back.mapped_blocks(1), 1);
        assert_eq!(back.mapped_blocks(42), 0);
    }

    #[test]
    fn view_rejects_truncation() {
        let bytes = sample_view().to_bytes();
        for cut in [0, 4, 10, bytes.len() - 1] {
            assert!(MetadataView::from_bytes(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn view_rejects_mapping_beyond_virtual_size() {
        let mut view = sample_view();
        let vol = view.volumes.get_mut(&1).unwrap();
        vol.mappings.insert(64, 5); // virtual_blocks is 64, so index 64 is invalid
        let bytes = view.to_bytes();
        assert!(MetadataView::from_bytes(&bytes).is_err());
    }

    #[test]
    fn view_rejects_mapping_beyond_device() {
        let mut view = sample_view();
        let vol = view.volumes.get_mut(&1).unwrap();
        vol.mappings.insert(1, 999); // bitmap len is 128
        assert!(MetadataView::from_bytes(&view.to_bytes()).is_err());
    }

    #[test]
    fn sequential_mappings_serialize_as_one_extent() {
        let mut bitmap = Bitmap::new(4096);
        for p in 100..100 + 64 {
            bitmap.set(p);
        }
        let mappings: ExtentMap = (0..64u64).map(|i| (i, 100 + i)).collect();
        let mut volumes = BTreeMap::new();
        volumes.insert(1, VolumeMeta { id: 1, virtual_blocks: 4096, mappings });
        let view = MetadataView { transaction_id: 1, bitmap, volumes };
        let bytes = view.to_bytes();
        let back = MetadataView::from_bytes(&bytes).unwrap();
        assert_eq!(back, view);
        assert_eq!(back.volumes[&1].mappings.extent_count(), 1);
        // One 24-byte triple instead of 64 16-byte pairs.
        let per_volume = 4 + 8 + 8 + 24;
        let bm = view.bitmap.to_bytes().len();
        assert_eq!(bytes.len(), 8 + 8 + bm + 4 + per_volume);
    }

    #[test]
    fn superblock_roundtrip() {
        let sb = Superblock {
            transaction_id: 42,
            active_half: 1,
            payload_len: 1234,
            payload_digest: [7u8; 32],
            checkpoint_txid: 40,
            journal_blocks: 3,
        };
        let mut block = vec![0u8; 512];
        sb.encode_into(&mut block);
        assert_eq!(Superblock::decode(&block).unwrap(), sb);
    }

    #[test]
    fn superblock_rejects_corruption() {
        let sb = Superblock {
            transaction_id: 1,
            active_half: 0,
            payload_len: 10,
            payload_digest: [0u8; 32],
            checkpoint_txid: 1,
            journal_blocks: 0,
        };
        let mut block = vec![0u8; 512];
        sb.encode_into(&mut block);

        let mut bad_magic = block.clone();
        bad_magic[0] ^= 0xFF;
        assert!(Superblock::decode(&bad_magic).is_err());

        let mut bad_version = block.clone();
        bad_version[8] = 99;
        assert!(Superblock::decode(&bad_version).is_err());

        let mut bad_half = block.clone();
        bad_half[20] = 2;
        assert!(Superblock::decode(&bad_half).is_err());

        let mut ahead = block.clone();
        ahead[61] = 9; // checkpoint_txid 9 > transaction_id 1
        assert!(Superblock::decode(&ahead).is_err());

        assert!(Superblock::decode(&block[..10]).is_err());
    }
}
