//! The pool's global free-space bitmap.
//!
//! One bit per physical data block, shared by *all* volumes — public,
//! hidden, and dummy. This is the paper's "global bitmap" moved to the
//! block layer (§IV-A Q3): because hidden writes mark their blocks
//! allocated here, public writes can never be given those blocks, and the
//! marks themselves are deniable (dummy writes produce identical marks).

/// A fixed-size bitmap over physical block indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    bits: Vec<u64>,
    len: u64,
    allocated: u64,
}

impl Bitmap {
    /// Creates a bitmap of `len` clear bits.
    pub fn new(len: u64) -> Self {
        let words = len.div_ceil(64) as usize;
        Bitmap { bits: vec![0u64; words], len, allocated: 0 }
    }

    /// Number of tracked blocks.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the bitmap tracks zero blocks.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set (allocated) bits.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Number of clear (free) bits.
    pub fn free(&self) -> u64 {
        self.len - self.allocated
    }

    /// Whether bit `index` is set.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: u64) -> bool {
        assert!(index < self.len, "bit {index} out of range");
        self.bits[(index / 64) as usize] & (1 << (index % 64)) != 0
    }

    /// Sets bit `index`; returns whether it was previously clear.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: u64) -> bool {
        assert!(index < self.len, "bit {index} out of range");
        let word = (index / 64) as usize;
        let mask = 1u64 << (index % 64);
        let was_clear = self.bits[word] & mask == 0;
        if was_clear {
            self.bits[word] |= mask;
            self.allocated += 1;
        }
        was_clear
    }

    /// Clears bit `index`; returns whether it was previously set.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn clear(&mut self, index: u64) -> bool {
        assert!(index < self.len, "bit {index} out of range");
        let word = (index / 64) as usize;
        let mask = 1u64 << (index % 64);
        let was_set = self.bits[word] & mask != 0;
        if was_set {
            self.bits[word] &= !mask;
            self.allocated -= 1;
        }
        was_set
    }

    /// Index of the first free bit at or after `from`, if any.
    pub fn first_free_from(&self, from: u64) -> Option<u64> {
        if from >= self.len {
            return None;
        }
        let mut word = (from / 64) as usize;
        let mut masked = !self.bits[word] & (!0u64 << (from % 64));
        loop {
            if masked != 0 {
                let bit = word as u64 * 64 + masked.trailing_zeros() as u64;
                if bit < self.len {
                    return Some(bit);
                }
                return None;
            }
            word += 1;
            if word >= self.bits.len() {
                return None;
            }
            masked = !self.bits[word];
        }
    }

    /// Index of the `n`-th free bit (0-based), if at least `n + 1` bits are
    /// free. This is the primitive behind random allocation: "generate a
    /// random number i between 1 and x; the i-th free block is the result"
    /// (§V-A of the paper).
    pub fn nth_free(&self, n: u64) -> Option<u64> {
        if n >= self.free() {
            return None;
        }
        let mut remaining = n;
        for (w, &bits) in self.bits.iter().enumerate() {
            let free_in_word = if (w + 1) * 64 <= self.len as usize {
                64 - bits.count_ones() as u64
            } else {
                // Partial last word: only count in-range bits.
                let valid = self.len - w as u64 * 64;
                valid - (bits & ((1u64 << valid) - 1)).count_ones() as u64
            };
            if remaining < free_in_word {
                // Walk the word.
                let mut free_bits = !bits;
                loop {
                    let bit = free_bits.trailing_zeros() as u64;
                    if remaining == 0 {
                        return Some(w as u64 * 64 + bit);
                    }
                    remaining -= 1;
                    free_bits &= free_bits - 1;
                }
            }
            remaining -= free_in_word;
        }
        None
    }

    /// Iterator over all set (allocated) bit indices.
    pub fn iter_allocated(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Serializes to little-endian words.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.bits.len() * 8);
        out.extend_from_slice(&self.len.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes from [`Bitmap::to_bytes`] output.
    ///
    /// Returns `None` if the buffer is malformed.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() < 8 {
            return None;
        }
        let len = u64::from_le_bytes(data[..8].try_into().ok()?);
        let words = len.div_ceil(64) as usize;
        if data.len() < 8 + words * 8 {
            return None;
        }
        let mut bits = Vec::with_capacity(words);
        for i in 0..words {
            let start = 8 + i * 8;
            bits.push(u64::from_le_bytes(data[start..start + 8].try_into().ok()?));
        }
        // Validate tail bits beyond len are clear.
        if len % 64 != 0 {
            if let Some(last) = bits.last() {
                if last >> (len % 64) != 0 {
                    return None;
                }
            }
        }
        let allocated = bits.iter().map(|w| w.count_ones() as u64).sum();
        Some(Bitmap { bits, len, allocated })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_clear_get() {
        let mut bm = Bitmap::new(130);
        assert_eq!(bm.free(), 130);
        assert!(bm.set(0));
        assert!(bm.set(64));
        assert!(bm.set(129));
        assert!(!bm.set(129), "double set reports already-set");
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1));
        assert_eq!(bm.allocated(), 3);
        assert!(bm.clear(64));
        assert!(!bm.clear(64));
        assert_eq!(bm.allocated(), 2);
    }

    #[test]
    fn first_free_skips_allocated_runs() {
        let mut bm = Bitmap::new(200);
        for i in 0..100 {
            bm.set(i);
        }
        assert_eq!(bm.first_free_from(0), Some(100));
        assert_eq!(bm.first_free_from(150), Some(150));
        for i in 100..200 {
            bm.set(i);
        }
        assert_eq!(bm.first_free_from(0), None);
    }

    #[test]
    fn first_free_respects_partial_last_word() {
        let mut bm = Bitmap::new(70);
        for i in 0..70 {
            bm.set(i);
        }
        assert_eq!(bm.first_free_from(0), None);
        bm.clear(69);
        assert_eq!(bm.first_free_from(0), Some(69));
        assert_eq!(bm.first_free_from(70), None);
    }

    #[test]
    fn nth_free_enumerates_in_order() {
        let mut bm = Bitmap::new(10);
        bm.set(0);
        bm.set(3);
        bm.set(4);
        // Free: 1,2,5,6,7,8,9
        assert_eq!(bm.nth_free(0), Some(1));
        assert_eq!(bm.nth_free(1), Some(2));
        assert_eq!(bm.nth_free(2), Some(5));
        assert_eq!(bm.nth_free(6), Some(9));
        assert_eq!(bm.nth_free(7), None);
    }

    #[test]
    fn nth_free_across_words() {
        let mut bm = Bitmap::new(256);
        for i in 0..256 {
            if i % 2 == 0 {
                bm.set(i);
            }
        }
        // Free bits are the odd indices.
        for n in 0..128 {
            assert_eq!(bm.nth_free(n), Some(2 * n + 1), "n={n}");
        }
        assert_eq!(bm.nth_free(128), None);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut bm = Bitmap::new(777);
        for i in (0..777).step_by(3) {
            bm.set(i);
        }
        let bytes = bm.to_bytes();
        let back = Bitmap::from_bytes(&bytes).unwrap();
        assert_eq!(back, bm);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Bitmap::from_bytes(&[]).is_none());
        assert!(Bitmap::from_bytes(&[1, 2, 3]).is_none());
        // Claimed length larger than provided words.
        let mut bytes = 1000u64.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(Bitmap::from_bytes(&bytes).is_none());
    }

    #[test]
    fn from_bytes_rejects_dirty_tail() {
        let mut bm = Bitmap::new(65);
        bm.set(64);
        let mut bytes = bm.to_bytes();
        // Corrupt a bit beyond len in the last word.
        let last = bytes.len() - 1;
        bytes[last] |= 0x80;
        assert!(Bitmap::from_bytes(&bytes).is_none());
    }

    #[test]
    fn iter_allocated_matches_gets() {
        let mut bm = Bitmap::new(100);
        let set: Vec<u64> = vec![1, 17, 63, 64, 65, 99];
        for &i in &set {
            bm.set(i);
        }
        assert_eq!(bm.iter_allocated().collect::<Vec<_>>(), set);
    }

    proptest! {
        #[test]
        fn prop_allocated_count_consistent(ops in prop::collection::vec((0u64..500, any::<bool>()), 0..200)) {
            let mut bm = Bitmap::new(500);
            let mut model = std::collections::HashSet::new();
            for (idx, set) in ops {
                if set {
                    bm.set(idx);
                    model.insert(idx);
                } else {
                    bm.clear(idx);
                    model.remove(&idx);
                }
            }
            prop_assert_eq!(bm.allocated(), model.len() as u64);
            prop_assert_eq!(bm.free(), 500 - model.len() as u64);
            for i in 0..500 {
                prop_assert_eq!(bm.get(i), model.contains(&i));
            }
        }

        #[test]
        fn prop_nth_free_agrees_with_linear_scan(
            set_bits in prop::collection::hash_set(0u64..300, 0..250),
            n in 0u64..320,
        ) {
            let mut bm = Bitmap::new(300);
            for &b in &set_bits {
                bm.set(b);
            }
            let frees: Vec<u64> = (0..300).filter(|i| !set_bits.contains(i)).collect();
            let expected = frees.get(n as usize).copied();
            prop_assert_eq!(bm.nth_free(n), expected);
        }

        #[test]
        fn prop_serialization_roundtrip(set_bits in prop::collection::hash_set(0u64..400, 0..300)) {
            let mut bm = Bitmap::new(400);
            for &b in &set_bits {
                bm.set(b);
            }
            let back = Bitmap::from_bytes(&bm.to_bytes()).unwrap();
            prop_assert_eq!(back, bm);
        }
    }
}
