//! Property tests of the run-length extent map: per-block semantics must
//! be indistinguishable from the `BTreeMap<u64, u64>` table it replaced,
//! the stored runs must stay in canonical (maximally merged) form, and the
//! serialized metadata must realize the size win the extent format exists
//! for.

// Test binary: aborting on an unexpected error is the point.
#![allow(clippy::unwrap_used)]

use mobiceal_thinp::{Extent, ExtentMap};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Bytes one extent occupies in the on-disk payload (three u64 fields).
const EXTENT_TRIPLE_BYTES: usize = 24;
/// Bytes one mapping occupied in the per-block format ((virtual, physical)
/// u64 pair) — the seed layout the extent format replaced.
const PER_BLOCK_PAIR_BYTES: usize = 16;

#[derive(Debug, Clone)]
enum MapOp {
    Insert { v: u64, p: u64 },
    Remove { v: u64 },
    InsertRun { v: u64, p: u64, len: u64 },
    RemoveRun { v: u64, len: u64 },
}

fn op_strategy() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        4 => (0..256u64, 0..512u64).prop_map(|(v, p)| MapOp::Insert { v, p }),
        2 => (0..256u64).prop_map(|v| MapOp::Remove { v }),
        1 => (0..256u64, 0..512u64, 1..16u64)
            .prop_map(|(v, p, len)| MapOp::InsertRun { v, p, len }),
        1 => (0..256u64, 1..16u64).prop_map(|(v, len)| MapOp::RemoveRun { v, len }),
    ]
}

fn apply(map: &mut ExtentMap, reference: &mut BTreeMap<u64, u64>, op: &MapOp) {
    match *op {
        MapOp::Insert { v, p } => {
            assert_eq!(map.insert(v, p), reference.insert(v, p));
        }
        MapOp::Remove { v } => {
            assert_eq!(map.remove(&v), reference.remove(&v));
        }
        MapOp::InsertRun { v, p, len } => {
            map.insert_run(Extent { virt_begin: v, data_begin: p, len });
            for i in 0..len {
                reference.insert(v + i, p + i);
            }
        }
        MapOp::RemoveRun { v, len } => {
            map.remove_run(v, len);
            for i in v..v + len {
                reference.remove(&i);
            }
        }
    }
}

proptest! {
    /// Any operation sequence leaves the extent map observably identical
    /// to the per-block reference: same returns, same length, same
    /// iteration, same point lookups (mapped and unmapped alike).
    #[test]
    fn extent_map_matches_per_block_reference(
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let mut map = ExtentMap::new();
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            apply(&mut map, &mut reference, op);
            prop_assert_eq!(map.len(), reference.len());
            prop_assert_eq!(map.is_empty(), reference.is_empty());
        }
        prop_assert_eq!(
            map.iter().collect::<Vec<_>>(),
            reference.iter().map(|(&v, &p)| (v, p)).collect::<Vec<_>>()
        );
        prop_assert_eq!(map.keys().collect::<Vec<_>>(), reference.keys().copied().collect::<Vec<_>>());
        prop_assert_eq!(
            map.values().collect::<Vec<_>>(),
            reference.values().copied().collect::<Vec<_>>()
        );
        for v in 0..300u64 {
            prop_assert_eq!(map.get(&v), reference.get(&v).copied(), "lookup at {}", v);
            prop_assert_eq!(map.contains_key(&v), reference.contains_key(&v));
        }
    }

    /// The stored runs stay canonical: sorted, non-empty, non-overlapping,
    /// and never mergeable with a neighbour (two adjacent runs always have
    /// a virtual or physical discontinuity between them). The extents also
    /// reproduce exactly the per-block view.
    #[test]
    fn extents_stay_canonical(
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let mut map = ExtentMap::new();
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            apply(&mut map, &mut reference, op);
        }
        let extents: Vec<Extent> = map.extents().collect();
        let mut total = 0u64;
        for e in &extents {
            prop_assert!(e.len >= 1, "zero-length run {:?}", e);
            total += e.len;
        }
        for pair in extents.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            prop_assert!(a.virt_begin + a.len <= b.virt_begin, "overlap: {:?} then {:?}", a, b);
            let mergeable =
                a.virt_begin + a.len == b.virt_begin && a.data_begin + a.len == b.data_begin;
            prop_assert!(!mergeable, "non-canonical neighbours {:?} / {:?}", a, b);
        }
        prop_assert_eq!(total as usize, map.len(), "cached length vs run lengths");
        let mut expanded = ExtentMap::new();
        for e in extents {
            expanded.insert_run(e);
        }
        prop_assert_eq!(&expanded, &map, "extents round-trip the map");
    }

    /// Building from an arbitrary pair list equals the reference map (the
    /// last insert of a duplicate virtual block wins in both).
    #[test]
    fn from_iterator_roundtrip(
        pairs in prop::collection::vec((0..512u64, 0..1024u64), 0..128),
    ) {
        let map: ExtentMap = pairs.iter().copied().collect();
        let reference: BTreeMap<u64, u64> = pairs.into_iter().collect();
        prop_assert_eq!(
            map.iter().collect::<Vec<_>>(),
            reference.into_iter().collect::<Vec<_>>()
        );
    }
}

/// The headline win: a 2048-block sequential workload (what the public
/// volume's sequential allocator produces) serializes at least 32x smaller
/// as extents than as per-block pairs.
#[test]
fn sequential_workload_serializes_at_least_32x_smaller() {
    let mut map = ExtentMap::new();
    for i in 0..2048u64 {
        map.insert(i, 64 + i);
    }
    assert_eq!(map.len(), 2048);
    assert_eq!(map.extent_count(), 1, "fully sequential traffic is one run");
    let extent_bytes = map.extent_count() * EXTENT_TRIPLE_BYTES;
    let per_block_bytes = map.len() * PER_BLOCK_PAIR_BYTES;
    assert!(
        per_block_bytes >= 32 * extent_bytes,
        "expected >= 32x shrink, got {per_block_bytes} -> {extent_bytes} bytes"
    );
}

/// MobiCeal's random allocator is the worst case: the extent map must
/// degrade gracefully (every mapping its own run), never worse than the
/// per-block format by more than the extra length field.
#[test]
fn random_workload_degrades_to_per_block_runs() {
    let mut map = ExtentMap::new();
    // Physical blocks deliberately scattered so nothing merges.
    for i in 0..512u64 {
        map.insert(i, (i * 2) % 1024 + (i % 2) * 511);
    }
    assert_eq!(map.len(), 512);
    let extent_bytes = map.extent_count() * EXTENT_TRIPLE_BYTES;
    let per_block_bytes = map.len() * PER_BLOCK_PAIR_BYTES;
    assert!(
        extent_bytes <= per_block_bytes * 3 / 2,
        "worst case bounded by the 24/16 byte ratio: {extent_bytes} vs {per_block_bytes}"
    );
}
