//! Property-based tests of the thin pool: random operation sequences
//! against a reference model, for both allocators.

use mobiceal_blockdev::{BlockDevice, MemDisk, SharedDevice};
use mobiceal_thinp::{AllocStrategy, PoolConfig, ThinPool};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum PoolOp {
    Write { vol: u32, vblock: u64, fill: u8 },
    Read { vol: u32, vblock: u64 },
    Discard { vol: u32, vblock: u64 },
    Commit,
}

fn op_strategy(vols: u32, vblocks: u64) -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        3 => (1..=vols, 0..vblocks, any::<u8>())
            .prop_map(|(vol, vblock, fill)| PoolOp::Write { vol, vblock, fill }),
        2 => (1..=vols, 0..vblocks).prop_map(|(vol, vblock)| PoolOp::Read { vol, vblock }),
        1 => (1..=vols, 0..vblocks).prop_map(|(vol, vblock)| PoolOp::Discard { vol, vblock }),
        1 => Just(PoolOp::Commit),
    ]
}

fn strategies() -> [AllocStrategy; 2] {
    [AllocStrategy::Sequential, AllocStrategy::Random]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random interleavings of writes, reads, discards and commits across
    /// three volumes behave exactly like independent HashMaps, under both
    /// allocation strategies.
    #[test]
    fn pool_matches_reference_model(
        ops in prop::collection::vec(op_strategy(3, 64), 1..80),
        seed in 0u64..500,
    ) {
        for strategy in strategies() {
            let data: SharedDevice = Arc::new(MemDisk::with_default_timing(512, 512));
            let meta: SharedDevice = Arc::new(MemDisk::with_default_timing(128, 512));
            let pool =
                ThinPool::create_seeded(data, meta, PoolConfig::new(3), strategy, seed).unwrap();
            let vols: Vec<_> = (1..=3).map(|v| pool.create_volume(v, 64).unwrap()).collect();
            let mut model: HashMap<(u32, u64), u8> = HashMap::new();
            for op in &ops {
                match *op {
                    PoolOp::Write { vol, vblock, fill } => {
                        vols[vol as usize - 1].write_block(vblock, &vec![fill; 512]).unwrap();
                        model.insert((vol, vblock), fill);
                    }
                    PoolOp::Read { vol, vblock } => {
                        let expect = model.get(&(vol, vblock)).copied().unwrap_or(0);
                        prop_assert_eq!(
                            vols[vol as usize - 1].read_block(vblock).unwrap(),
                            vec![expect; 512]
                        );
                    }
                    PoolOp::Discard { vol, vblock } => {
                        pool.discard(vol, vblock).unwrap();
                        model.remove(&(vol, vblock));
                    }
                    PoolOp::Commit => pool.commit().unwrap(),
                }
            }
            // Mapped block count equals model size; all contents match.
            let mapped: u64 = (1..=3).map(|v| pool.volume_mapped_blocks(v)).sum();
            prop_assert_eq!(mapped, model.len() as u64);
            for (&(vol, vblock), &fill) in &model {
                prop_assert_eq!(
                    vols[vol as usize - 1].read_block(vblock).unwrap(),
                    vec![fill; 512]
                );
            }
        }
    }

    /// No physical block is ever shared between volumes or double-mapped,
    /// whatever the operation sequence.
    #[test]
    fn physical_blocks_never_alias(
        ops in prop::collection::vec(op_strategy(3, 64), 1..80),
        seed in 0u64..500,
    ) {
        for strategy in strategies() {
            let data: SharedDevice = Arc::new(MemDisk::with_default_timing(512, 512));
            let meta: SharedDevice = Arc::new(MemDisk::with_default_timing(128, 512));
            let pool =
                ThinPool::create_seeded(data, meta, PoolConfig::new(3), strategy, seed).unwrap();
            let vols: Vec<_> = (1..=3).map(|v| pool.create_volume(v, 64).unwrap()).collect();
            for op in &ops {
                match *op {
                    PoolOp::Write { vol, vblock, fill } => {
                        let _ = vols[vol as usize - 1].write_block(vblock, &vec![fill; 512]);
                    }
                    PoolOp::Discard { vol, vblock } => {
                        pool.discard(vol, vblock).unwrap();
                    }
                    _ => {}
                }
            }
            let view = pool.metadata_view();
            let mut seen = HashSet::new();
            for vol in view.volumes.values() {
                for &p in vol.mappings.values() {
                    prop_assert!(seen.insert(p), "physical block {} double-mapped", p);
                    prop_assert!(view.bitmap.get(p), "mapped block {} not marked allocated", p);
                }
            }
        }
    }

    /// Commit + reopen restores exactly the committed state under both
    /// allocators.
    #[test]
    fn reopen_reflects_last_commit(
        writes in prop::collection::vec((1u32..=2, 0u64..32, any::<u8>()), 1..30),
        seed in 0u64..500,
    ) {
        for strategy in strategies() {
            let data: SharedDevice = Arc::new(MemDisk::with_default_timing(256, 512));
            let meta: SharedDevice = Arc::new(MemDisk::with_default_timing(128, 512));
            let pool = ThinPool::create_seeded(
                data.clone(), meta.clone(), PoolConfig::new(2), strategy, seed,
            ).unwrap();
            let v1 = pool.create_volume(1, 32).unwrap();
            let v2 = pool.create_volume(2, 32).unwrap();
            let mut model: HashMap<(u32, u64), u8> = HashMap::new();
            for &(vol, vblock, fill) in &writes {
                let v = if vol == 1 { &v1 } else { &v2 };
                v.write_block(vblock, &vec![fill; 512]).unwrap();
                model.insert((vol, vblock), fill);
            }
            pool.commit().unwrap();
            drop((pool, v1, v2));

            let pool2 =
                ThinPool::open(data, meta, PoolConfig::new(2), strategy, seed + 1).unwrap();
            for (&(vol, vblock), &fill) in &model {
                let v = pool2.open_volume(vol).unwrap();
                prop_assert_eq!(v.read_block(vblock).unwrap(), vec![fill; 512]);
            }
        }
    }
}
