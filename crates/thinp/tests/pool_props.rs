//! Property-based tests of the thin pool: random operation sequences
//! against a reference model, for both allocators.

// Test binary: aborting on an unexpected error is the point.
#![allow(clippy::unwrap_used)]

use mobiceal_blockdev::{BlockDevice, MemDisk, SharedDevice};
use mobiceal_thinp::{AllocStrategy, PoolConfig, ThinPool};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum PoolOp {
    Write { vol: u32, vblock: u64, fill: u8 },
    Read { vol: u32, vblock: u64 },
    Discard { vol: u32, vblock: u64 },
    Commit,
}

fn op_strategy(vols: u32, vblocks: u64) -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        3 => (1..=vols, 0..vblocks, any::<u8>())
            .prop_map(|(vol, vblock, fill)| PoolOp::Write { vol, vblock, fill }),
        2 => (1..=vols, 0..vblocks).prop_map(|(vol, vblock)| PoolOp::Read { vol, vblock }),
        1 => (1..=vols, 0..vblocks).prop_map(|(vol, vblock)| PoolOp::Discard { vol, vblock }),
        1 => Just(PoolOp::Commit),
    ]
}

fn strategies() -> [AllocStrategy; 2] {
    [AllocStrategy::Sequential, AllocStrategy::Random]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random interleavings of writes, reads, discards and commits across
    /// three volumes behave exactly like independent HashMaps, under both
    /// allocation strategies.
    #[test]
    fn pool_matches_reference_model(
        ops in prop::collection::vec(op_strategy(3, 64), 1..80),
        seed in 0u64..500,
    ) {
        for strategy in strategies() {
            let data: SharedDevice = Arc::new(MemDisk::with_default_timing(512, 512));
            let meta: SharedDevice = Arc::new(MemDisk::with_default_timing(128, 512));
            let pool =
                ThinPool::create_seeded(data, meta, PoolConfig::new(3), strategy, seed).unwrap();
            let vols: Vec<_> = (1..=3).map(|v| pool.create_volume(v, 64).unwrap()).collect();
            let mut model: HashMap<(u32, u64), u8> = HashMap::new();
            for op in &ops {
                match *op {
                    PoolOp::Write { vol, vblock, fill } => {
                        vols[vol as usize - 1].write_block(vblock, &vec![fill; 512]).unwrap();
                        model.insert((vol, vblock), fill);
                    }
                    PoolOp::Read { vol, vblock } => {
                        let expect = model.get(&(vol, vblock)).copied().unwrap_or(0);
                        prop_assert_eq!(
                            vols[vol as usize - 1].read_block(vblock).unwrap(),
                            vec![expect; 512]
                        );
                    }
                    PoolOp::Discard { vol, vblock } => {
                        pool.discard(vol, vblock).unwrap();
                        model.remove(&(vol, vblock));
                    }
                    PoolOp::Commit => pool.commit().unwrap(),
                }
            }
            // Mapped block count equals model size; all contents match.
            let mapped: u64 = (1..=3).map(|v| pool.volume_mapped_blocks(v)).sum();
            prop_assert_eq!(mapped, model.len() as u64);
            for (&(vol, vblock), &fill) in &model {
                prop_assert_eq!(
                    vols[vol as usize - 1].read_block(vblock).unwrap(),
                    vec![fill; 512]
                );
            }
        }
    }

    /// No physical block is ever shared between volumes or double-mapped,
    /// whatever the operation sequence.
    #[test]
    fn physical_blocks_never_alias(
        ops in prop::collection::vec(op_strategy(3, 64), 1..80),
        seed in 0u64..500,
    ) {
        for strategy in strategies() {
            let data: SharedDevice = Arc::new(MemDisk::with_default_timing(512, 512));
            let meta: SharedDevice = Arc::new(MemDisk::with_default_timing(128, 512));
            let pool =
                ThinPool::create_seeded(data, meta, PoolConfig::new(3), strategy, seed).unwrap();
            let vols: Vec<_> = (1..=3).map(|v| pool.create_volume(v, 64).unwrap()).collect();
            for op in &ops {
                match *op {
                    PoolOp::Write { vol, vblock, fill } => {
                        let _ = vols[vol as usize - 1].write_block(vblock, &vec![fill; 512]);
                    }
                    PoolOp::Discard { vol, vblock } => {
                        pool.discard(vol, vblock).unwrap();
                    }
                    _ => {}
                }
            }
            let view = pool.metadata_view();
            let mut seen = HashSet::new();
            for vol in view.volumes.values() {
                for p in vol.mappings.values() {
                    prop_assert!(seen.insert(p), "physical block {} double-mapped", p);
                    prop_assert!(view.bitmap.get(p), "mapped block {} not marked allocated", p);
                }
            }
        }
    }

    /// A vectored thin-volume write is equivalent to the sequence of
    /// single-block writes: same allocator stream, same mappings, same
    /// bytes on the data device, same metadata an adversary would recover.
    /// Under the amortized multi-command cost model the batch's charged
    /// device time is at most the sequential loop's — equal for a single
    /// write, strictly below once three or more blocks share the batch —
    /// because the thin layer hands the whole mapped batch to the data
    /// device in one vectored call instead of splitting it into singles.
    #[test]
    fn write_blocks_equivalent_to_sequential(
        writes in prop::collection::vec((0u64..64, any::<u8>()), 0..80),
        seed in 0u64..500,
    ) {
        for strategy in strategies() {
            let mk = || {
                let data = Arc::new(MemDisk::with_default_timing(512, 512));
                let shared: SharedDevice = data.clone();
                let meta: SharedDevice = Arc::new(MemDisk::with_default_timing(128, 512));
                let pool = ThinPool::create_seeded(
                    shared, meta, PoolConfig::new(1), strategy, seed,
                ).unwrap();
                let vol = pool.create_volume(1, 64).unwrap();
                (data, pool, vol)
            };
            let (data_a, pool_a, vol_a) = mk();
            let (data_b, pool_b, vol_b) = mk();
            let buffers: Vec<(u64, Vec<u8>)> =
                writes.iter().map(|&(b, fill)| (b, vec![fill; 512])).collect();
            let batch: Vec<(u64, &[u8])> =
                buffers.iter().map(|(b, d)| (*b, d.as_slice())).collect();
            vol_a.write_blocks(&batch).unwrap();
            for (b, d) in &buffers {
                vol_b.write_block(*b, d).unwrap();
            }
            prop_assert_eq!(pool_a.metadata_view(), pool_b.metadata_view());
            prop_assert_eq!(pool_a.allocated_blocks(), pool_b.allocated_blocks());
            let (snap_a, snap_b) = (data_a.snapshot(), data_b.snapshot());
            prop_assert_eq!(
                snap_a.as_bytes(),
                snap_b.as_bytes(),
                "identical physical placement and bytes"
            );
            prop_assert_eq!(
                data_a.stats().without_time(),
                data_b.stats().without_time(),
                "same op mix and bytes on the data device"
            );
            let (batched_t, sequential_t) = (data_a.clock().now(), data_b.clock().now());
            prop_assert!(batched_t <= sequential_t, "batched must not exceed sequential");
            if writes.len() == 1 {
                prop_assert_eq!(batched_t, sequential_t, "a batch of one is a single command");
            }
            if writes.len() > 2 {
                prop_assert!(batched_t < sequential_t, "deep batches must amortize");
            }
            for b in 0..64 {
                prop_assert_eq!(vol_a.read_block(b).unwrap(), vol_b.read_block(b).unwrap());
            }
        }
    }

    /// A vectored thin-volume read returns exactly what the sequential
    /// loop returns, holes included; charged device time is amortized
    /// (never above the sequential loop, equal when at most one block
    /// touches the medium).
    #[test]
    fn read_blocks_equivalent_to_sequential(
        writes in prop::collection::vec((0u64..64, any::<u8>()), 0..40),
        reads in prop::collection::vec(0u64..64, 0..60),
        seed in 0u64..500,
    ) {
        let mk = || {
            let data = Arc::new(MemDisk::with_default_timing(512, 512));
            let shared: SharedDevice = data.clone();
            let meta: SharedDevice = Arc::new(MemDisk::with_default_timing(128, 512));
            let pool = ThinPool::create_seeded(
                shared, meta, PoolConfig::new(1), AllocStrategy::Random, seed,
            ).unwrap();
            let vol = pool.create_volume(1, 64).unwrap();
            (data, vol)
        };
        let (data_a, vol_a) = mk();
        let (data_b, vol_b) = mk();
        for &(b, fill) in &writes {
            vol_a.write_block(b, &vec![fill; 512]).unwrap();
            vol_b.write_block(b, &vec![fill; 512]).unwrap();
        }
        let (before_a, before_b) = (data_a.clock().now(), data_b.clock().now());
        let from_batch = vol_a.read_blocks(&reads).unwrap();
        let from_loop: Vec<Vec<u8>> =
            reads.iter().map(|&b| vol_b.read_block(b).unwrap()).collect();
        prop_assert_eq!(from_batch, from_loop);
        let batched_t = data_a.clock().now() - before_a;
        let sequential_t = data_b.clock().now() - before_b;
        prop_assert!(batched_t <= sequential_t);
        // Only mapped blocks touch the medium; holes read as zeros for
        // free, so amortization kicks in from three device reads up.
        let written: HashSet<u64> = writes.iter().map(|&(b, _)| b).collect();
        let mapped_reads = reads.iter().filter(|b| written.contains(b)).count();
        if mapped_reads <= 1 {
            prop_assert_eq!(batched_t, sequential_t);
        }
        if mapped_reads > 2 {
            prop_assert!(batched_t < sequential_t, "deep batches must amortize");
        }
    }

    /// A batched append lands exactly the blocks the sequential
    /// [`ThinPool::append_block`] loop would land — same count, same
    /// virtual indices, same physical placement — including the
    /// partial-append behaviour when the pool or volume fills up.
    #[test]
    fn append_blocks_equivalent_to_sequential(
        count in 0u64..40,
        prefill in 0u64..16,
        seed in 0u64..500,
    ) {
        for strategy in strategies() {
            // A deliberately small pool so larger batches hit NoSpace.
            let mk = || {
                let data: SharedDevice = Arc::new(MemDisk::with_default_timing(32, 512));
                let meta: SharedDevice = Arc::new(MemDisk::with_default_timing(128, 512));
                let pool = ThinPool::create_seeded(
                    data, meta, PoolConfig::new(1), strategy, seed,
                ).unwrap();
                // Virtual space larger than the 32-block data device, so
                // exhaustion comes from the pool itself.
                pool.create_volume(1, 64).unwrap();
                pool
            };
            let pool_a = mk();
            let pool_b = mk();
            let blocks: Vec<Vec<u8>> =
                (0..count).map(|i| vec![i as u8; 512]).collect();
            for pool in [&pool_a, &pool_b] {
                for i in 0..prefill {
                    // Interior mappings so the lowest-unmapped walk skips.
                    pool.open_volume(1).unwrap()
                        .write_block(i * 2, &vec![0xEE; 512]).unwrap();
                }
            }
            let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
            let batched = pool_a.append_blocks(1, &refs).unwrap();
            let mut sequential = 0u64;
            for b in &blocks {
                if pool_b.append_block(1, b).is_err() {
                    break;
                }
                sequential += 1;
            }
            prop_assert_eq!(batched, sequential);
            prop_assert_eq!(pool_a.metadata_view(), pool_b.metadata_view());
            let va = pool_a.open_volume(1).unwrap();
            let vb = pool_b.open_volume(1).unwrap();
            for b in 0..64 {
                prop_assert_eq!(va.read_block(b).unwrap(), vb.read_block(b).unwrap());
            }
        }
    }

    /// Batched discards release exactly what the sequential loop releases.
    #[test]
    fn discard_many_equivalent_to_sequential(
        writes in prop::collection::vec(0u64..64, 0..40),
        discards in prop::collection::vec(0u64..64, 0..40),
        seed in 0u64..500,
    ) {
        let mk = || {
            let data: SharedDevice = Arc::new(MemDisk::with_default_timing(512, 512));
            let meta: SharedDevice = Arc::new(MemDisk::with_default_timing(128, 512));
            let pool = ThinPool::create_seeded(
                data, meta, PoolConfig::new(1), AllocStrategy::Random, seed,
            ).unwrap();
            let vol = pool.create_volume(1, 64).unwrap();
            (pool, vol)
        };
        let (pool_a, vol_a) = mk();
        let (pool_b, vol_b) = mk();
        for &b in &writes {
            vol_a.write_block(b, &vec![1u8; 512]).unwrap();
            vol_b.write_block(b, &vec![1u8; 512]).unwrap();
        }
        pool_a.discard_many(1, &discards).unwrap();
        for &b in &discards {
            pool_b.discard(1, b).unwrap();
        }
        prop_assert_eq!(pool_a.metadata_view(), pool_b.metadata_view());
        prop_assert_eq!(pool_a.allocated_blocks(), pool_b.allocated_blocks());
    }

    /// Commit + reopen restores exactly the committed state under both
    /// allocators.
    #[test]
    fn reopen_reflects_last_commit(
        writes in prop::collection::vec((1u32..=2, 0u64..32, any::<u8>()), 1..30),
        seed in 0u64..500,
    ) {
        for strategy in strategies() {
            let data: SharedDevice = Arc::new(MemDisk::with_default_timing(256, 512));
            let meta: SharedDevice = Arc::new(MemDisk::with_default_timing(128, 512));
            let pool = ThinPool::create_seeded(
                data.clone(), meta.clone(), PoolConfig::new(2), strategy, seed,
            ).unwrap();
            let v1 = pool.create_volume(1, 32).unwrap();
            let v2 = pool.create_volume(2, 32).unwrap();
            let mut model: HashMap<(u32, u64), u8> = HashMap::new();
            for &(vol, vblock, fill) in &writes {
                let v = if vol == 1 { &v1 } else { &v2 };
                v.write_block(vblock, &vec![fill; 512]).unwrap();
                model.insert((vol, vblock), fill);
            }
            pool.commit().unwrap();
            drop((pool, v1, v2));

            let pool2 =
                ThinPool::open(data, meta, PoolConfig::new(2), strategy, seed + 1).unwrap();
            for (&(vol, vblock), &fill) in &model {
                let v = pool2.open_volume(vol).unwrap();
                prop_assert_eq!(v.read_block(vblock).unwrap(), vec![fill; 512]);
            }
        }
    }
}
