//! The side-channel log model (§IV-D).
//!
//! Czeskis et al.'s attack against TrueCrypt-style deniable systems works
//! because the shared OS records traces of hidden activity in *public*
//! places — recent-file lists, logs at `/devlog`, caches at `/cache`. HIVE
//! and DEFY are vulnerable to the same channel; MobiCeal closes it by
//! unmounting those partitions and substituting tmpfs RAM disks before the
//! hidden volume is mounted, and by requiring a reboot (RAM cleared) to
//! leave hidden mode.
//!
//! [`LogStore`] models the two destinations. The adversary can read
//! [`LogStore::persistent`] (it is on public storage); it can never read
//! [`LogStore::ram`] (the device is captured only when the user is *not* in
//! hidden mode, per the §III-A assumptions — and a reboot clears RAM).

/// Where a log line lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogSink {
    /// `/devlog`, `/cache`, public `/data`: survives reboot; adversary-readable.
    Persistent,
    /// tmpfs RAM disk: cleared at reboot; never captured.
    Ram,
}

/// The device's log state.
#[derive(Debug, Clone, Default)]
pub struct LogStore {
    persistent: Vec<String>,
    ram: Vec<String>,
}

impl LogStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a log line to the given sink.
    pub fn record(&mut self, sink: LogSink, line: impl Into<String>) {
        match sink {
            LogSink::Persistent => self.persistent.push(line.into()),
            LogSink::Ram => self.ram.push(line.into()),
        }
    }

    /// Lines on persistent public storage — the adversary's view.
    pub fn persistent(&self) -> &[String] {
        &self.persistent
    }

    /// Lines in RAM (white-box access for tests; the adversary never sees
    /// these).
    pub fn ram(&self) -> &[String] {
        &self.ram
    }

    /// Reboot: RAM is cleared, persistent storage survives.
    pub fn on_reboot(&mut self) {
        self.ram.clear();
    }

    /// Whether any persistent line mentions `needle` — the adversary's
    /// side-channel grep.
    pub fn persistent_mentions(&self, needle: &str) -> bool {
        self.persistent.iter().any(|l| l.contains(needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinks_are_separate() {
        let mut logs = LogStore::new();
        logs.record(LogSink::Persistent, "mounted /data");
        logs.record(LogSink::Ram, "opened hidden_volume_4");
        assert_eq!(logs.persistent().len(), 1);
        assert_eq!(logs.ram().len(), 1);
        assert!(logs.persistent_mentions("/data"));
        assert!(!logs.persistent_mentions("hidden_volume_4"));
    }

    #[test]
    fn reboot_clears_ram_only() {
        let mut logs = LogStore::new();
        logs.record(LogSink::Persistent, "boot completed");
        logs.record(LogSink::Ram, "hidden session trace");
        logs.on_reboot();
        assert!(logs.ram().is_empty());
        assert_eq!(logs.persistent().len(), 1);
    }
}
