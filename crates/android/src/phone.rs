//! [`AndroidPhone`]: the device state machine and user flows.

use crate::logs::{LogSink, LogStore};
use crate::timing::AndroidTimingModel;
use mobiceal::{MobiCeal, MobiCealConfig, MobiCealError, UnlockedVolume};
use mobiceal_blockdev::{DiskSnapshot, MemDisk, SharedDevice};
use mobiceal_sim::{SimClock, SimDuration};
use std::sync::Arc;

/// Power/mode state of the simulated phone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhoneState {
    /// Off; storage at rest.
    PoweredOff,
    /// Booted to the pre-boot authentication prompt (no volume mounted).
    PreBootAuth,
    /// Public volume mounted at `/data`; daily use.
    PublicMode,
    /// Hidden volume mounted at `/data`; logs on tmpfs.
    HiddenMode,
}

/// A simulated Android phone with MobiCeal installed.
///
/// Implements the user steps of §IV-B/§IV-D and the Vold/screen-lock flows
/// of §V-B/§V-C, charging every platform step to the shared clock per the
/// [`AndroidTimingModel`]. See the crate docs for an example.
pub struct AndroidPhone {
    clock: SimClock,
    timing: AndroidTimingModel,
    disk: Arc<MemDisk>,
    config: MobiCealConfig,
    mobiceal: Option<MobiCeal>,
    state: PhoneState,
    logs: LogStore,
    public_session: Option<UnlockedVolume>,
    hidden_session: Option<UnlockedVolume>,
    /// MobiCeal's §IV-D countermeasure. Disable to model a HIVE/DEFY-like
    /// system that leaves hidden-mode traces on public storage.
    side_channel_protection: bool,
    reopen_seed: u64,
}

impl std::fmt::Debug for AndroidPhone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AndroidPhone").field("state", &self.state).finish_non_exhaustive()
    }
}

impl AndroidPhone {
    /// A powered-off phone with a blank userdata partition of
    /// `blocks × block_size` bytes.
    pub fn new(clock: SimClock, blocks: u64, block_size: usize, config: MobiCealConfig) -> Self {
        let disk = Arc::new(MemDisk::new(blocks, block_size, clock.clone()));
        AndroidPhone {
            clock,
            timing: AndroidTimingModel::nexus4(),
            disk,
            config,
            mobiceal: None,
            state: PhoneState::PoweredOff,
            logs: LogStore::new(),
            public_session: None,
            hidden_session: None,
            side_channel_protection: true,
            reopen_seed: 0xA11D201D,
        }
    }

    /// Replaces the timing model (for calibration experiments).
    pub fn with_timing(mut self, timing: AndroidTimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Disables the §IV-D side-channel countermeasure, modelling systems
    /// (HIVE, DEFY) that share `/devlog`//`/cache` with hidden mode.
    pub fn without_side_channel_protection(mut self) -> Self {
        self.side_channel_protection = false;
        self
    }

    /// The `vdc cryptfs pde wipe <pub_pwd> <num_vol> <hid_pwds>` flow
    /// (§V-B): formats the device for MobiCeal and reboots to the password
    /// prompt. Returns the initialization time (the Table II metric).
    ///
    /// # Errors
    ///
    /// Propagates [`MobiCealError`] from the underlying initialization.
    pub fn initialize_mobiceal(
        &mut self,
        decoy_password: &str,
        hidden_passwords: &[&str],
        seed: u64,
    ) -> Result<SimDuration, MobiCealError> {
        let start = self.clock.now();
        self.clock.advance(self.timing.vdc_call);
        // LVM + thin-pool/volume creation on the device.
        self.clock.advance(self.timing.lvm_setup);
        let mc = MobiCeal::initialize(
            self.disk.clone() as SharedDevice,
            self.clock.clone(),
            self.config.clone(),
            decoy_password,
            hidden_passwords,
            seed,
        )?;
        // mkfs for the public volume.
        self.clock.advance(self.timing.mkfs);
        mc.commit()?;
        self.mobiceal = Some(mc);
        // "and reboots when complete" — the measured initialization time
        // ends when the password prompt appears.
        self.reboot_internal();
        Ok(self.clock.now() - start)
    }

    /// Powers the phone on (cold boot to the password prompt).
    pub fn power_on(&mut self) {
        if self.state == PhoneState::PoweredOff {
            self.clock.advance(self.timing.full_reboot);
            self.state = PhoneState::PreBootAuth;
        }
    }

    /// Pre-boot authentication with the decoy password (§V-B boot flow).
    /// Returns the booting time (the Table II metric: password entry to
    /// decrypted, mounted public volume).
    ///
    /// # Errors
    ///
    /// [`MobiCealError::BadPassword`] for a wrong password (the prompt asks
    /// again; state is unchanged).
    ///
    /// # Panics
    ///
    /// Panics if the phone is not at the pre-boot prompt.
    pub fn enter_boot_password(&mut self, password: &str) -> Result<SimDuration, MobiCealError> {
        assert_eq!(self.state, PhoneState::PreBootAuth, "phone must be at the boot prompt");
        let start = self.clock.now();
        // Enable the thin volumes.
        self.clock.advance(self.timing.thin_pool_activation);
        self.clock.advance(self.timing.per_volume_activation * self.config.num_volumes as u64);
        let mc = self.reopen()?;
        let session = mc.unlock_public(password)?; // PBKDF2 charged inside
        self.clock.advance(self.timing.dm_crypt_setup);
        self.clock.advance(self.timing.mount);
        self.logs.record(LogSink::Persistent, "vold: mounted /data (userdata)");
        self.public_session = Some(session);
        self.state = PhoneState::PublicMode;
        Ok(self.clock.now() - start)
    }

    /// The screen-lock fast switch into hidden mode (§IV-D, §V-C): verify
    /// the hidden password, stop the framework, unmount public partitions,
    /// mount tmpfs over the leakage paths, mount the hidden volume, restart
    /// the framework. Returns the switching time (Table II metric).
    ///
    /// # Errors
    ///
    /// [`MobiCealError::BadPassword`] if the password is neither the screen
    /// lock nor a hidden password (the screen lock just asks again).
    ///
    /// # Panics
    ///
    /// Panics if the phone is not in public mode.
    pub fn switch_to_hidden(&mut self, password: &str) -> Result<SimDuration, MobiCealError> {
        assert_eq!(self.state, PhoneState::PublicMode, "fast switch starts from public mode");
        let start = self.clock.now();
        // Screen lock hands the password to Vold for verification first; a
        // failure leaves the device untouched in public mode.
        let mc = self.mobiceal.as_ref().expect("public mode implies an open device");
        let session = mc.unlock_hidden(password)?;
        // Shut down the Android framework to free /data (§IV-D).
        self.clock.advance(self.timing.framework_stop);
        // Unmount the three leakage paths: /data, /cache, /devlog.
        self.clock.advance(self.timing.mount * 3);
        self.public_session = None;
        if self.side_channel_protection {
            // tmpfs RAM disks over /devlog and /cache.
            self.clock.advance(self.timing.tmpfs_mount * 2);
        }
        // Decrypt and mount the hidden volume as /data.
        self.clock.advance(self.timing.dm_crypt_setup);
        self.clock.advance(self.timing.mount);
        let sink = if self.side_channel_protection { LogSink::Ram } else { LogSink::Persistent };
        self.logs.record(sink, format!("vold: mounted hidden volume V{}", session.volume_id()));
        self.hidden_session = Some(session);
        // Restart the framework.
        self.clock.advance(self.timing.framework_start);
        self.state = PhoneState::HiddenMode;
        Ok(self.clock.now() - start)
    }

    /// Leaves hidden mode. MobiCeal mandates a full reboot so RAM retains
    /// nothing (§IV-D one-way switching). Returns the switch-out time.
    ///
    /// # Panics
    ///
    /// Panics if the phone is not in hidden mode.
    pub fn exit_hidden_mode(&mut self) -> SimDuration {
        assert_eq!(self.state, PhoneState::HiddenMode, "not in hidden mode");
        let start = self.clock.now();
        if let Some(mc) = &self.mobiceal {
            let _ = mc.commit();
        }
        self.reboot_internal();
        self.clock.now() - start
    }

    /// Reboots from any powered-on state (commits metadata first, clears
    /// RAM, back to the pre-boot prompt).
    pub fn reboot(&mut self) {
        if let Some(mc) = &self.mobiceal {
            let _ = mc.commit();
        }
        self.reboot_internal();
    }

    fn reboot_internal(&mut self) {
        self.public_session = None;
        self.hidden_session = None;
        self.mobiceal = None; // kernel state is gone; reopen from disk
        self.logs.on_reboot();
        self.clock.advance(self.timing.full_reboot);
        self.state = PhoneState::PreBootAuth;
    }

    fn reopen(&mut self) -> Result<&MobiCeal, MobiCealError> {
        if self.mobiceal.is_none() {
            self.reopen_seed = self.reopen_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.mobiceal = Some(MobiCeal::open(
                self.disk.clone() as SharedDevice,
                self.clock.clone(),
                self.config.clone(),
                self.reopen_seed,
            )?);
        }
        Ok(self.mobiceal.as_ref().expect("just ensured"))
    }

    /// Records app/system activity in the current mode, hitting the log
    /// sinks the way the OS would.
    ///
    /// # Panics
    ///
    /// Panics if no volume is mounted.
    pub fn record_activity(&mut self, description: &str) {
        match self.state {
            PhoneState::PublicMode => {
                self.logs.record(LogSink::Persistent, format!("activity: {description}"));
            }
            PhoneState::HiddenMode => {
                let sink =
                    if self.side_channel_protection { LogSink::Ram } else { LogSink::Persistent };
                self.logs.record(sink, format!("activity: {description}"));
            }
            _ => panic!("no volume mounted"),
        }
    }

    /// Current state.
    pub fn state(&self) -> PhoneState {
        self.state
    }

    /// The mounted public volume, if in public mode.
    pub fn data_volume(&self) -> Option<&UnlockedVolume> {
        match self.state {
            PhoneState::PublicMode => self.public_session.as_ref(),
            PhoneState::HiddenMode => self.hidden_session.as_ref(),
            _ => None,
        }
    }

    /// The log store (adversary reads [`LogStore::persistent`]).
    pub fn logs(&self) -> &LogStore {
        &self.logs
    }

    /// The MobiCeal device, when powered on and initialized.
    pub fn mobiceal(&self) -> Option<&MobiCeal> {
        self.mobiceal.as_ref()
    }

    /// Images the userdata partition (what a border agent copies).
    pub fn snapshot(&self) -> DiskSnapshot {
        self.disk.snapshot()
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The timing model in use.
    pub fn timing(&self) -> &AndroidTimingModel {
        &self.timing
    }

    /// The number of thin volumes this phone's policy configures.
    pub fn config_volumes(&self) -> u32 {
        self.config.num_volumes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::BlockDevice;

    fn fast_config() -> MobiCealConfig {
        MobiCealConfig {
            num_volumes: 6,
            pbkdf2_iterations: 4,
            metadata_blocks: 64,
            ..MobiCealConfig::default()
        }
    }

    fn ready_phone(seed: u64) -> AndroidPhone {
        let clock = SimClock::new();
        let mut phone = AndroidPhone::new(clock, 4096, 4096, fast_config());
        phone.initialize_mobiceal("decoy", &["hidden"], seed).unwrap();
        phone
    }

    #[test]
    fn initialization_lands_near_paper_time() {
        let phone = ready_phone(1);
        assert_eq!(phone.state(), PhoneState::PreBootAuth);
        // Table II: 2 min 16 s ± a few seconds.
        let t = phone.clock().now().as_secs_f64();
        assert!((100.0..200.0).contains(&t), "init took {t:.1}s");
    }

    #[test]
    fn boot_flow_and_timing() {
        let mut phone = ready_phone(2);
        let boot = phone.enter_boot_password("decoy").unwrap();
        assert_eq!(phone.state(), PhoneState::PublicMode);
        // Table II: 1.68 s.
        assert!((1.0..2.5).contains(&boot.as_secs_f64()), "boot took {boot}");
    }

    #[test]
    fn wrong_boot_password_keeps_prompt() {
        let mut phone = ready_phone(3);
        assert!(matches!(phone.enter_boot_password("nope"), Err(MobiCealError::BadPassword)));
        assert_eq!(phone.state(), PhoneState::PreBootAuth);
        assert!(phone.enter_boot_password("decoy").is_ok());
    }

    #[test]
    fn fast_switch_is_under_ten_seconds() {
        let mut phone = ready_phone(4);
        phone.enter_boot_password("decoy").unwrap();
        let switch = phone.switch_to_hidden("hidden").unwrap();
        assert_eq!(phone.state(), PhoneState::HiddenMode);
        // Table II: 9.27 s, vs > 60 s for reboot-based systems.
        assert!((8.0..10.0).contains(&switch.as_secs_f64()), "switch took {switch}");
    }

    #[test]
    fn wrong_hidden_password_stays_public() {
        let mut phone = ready_phone(5);
        phone.enter_boot_password("decoy").unwrap();
        assert!(matches!(phone.switch_to_hidden("guess"), Err(MobiCealError::BadPassword)));
        assert_eq!(phone.state(), PhoneState::PublicMode);
        assert!(phone.data_volume().is_some(), "public volume still mounted");
    }

    #[test]
    fn exit_hidden_mode_requires_reboot_time() {
        let mut phone = ready_phone(6);
        phone.enter_boot_password("decoy").unwrap();
        phone.switch_to_hidden("hidden").unwrap();
        let out = phone.exit_hidden_mode();
        assert_eq!(phone.state(), PhoneState::PreBootAuth);
        // Table II: ~63 s.
        assert!(out.as_secs_f64() > 55.0, "switch-out took {out}");
    }

    #[test]
    fn hidden_data_survives_the_whole_cycle() {
        let mut phone = ready_phone(7);
        phone.enter_boot_password("decoy").unwrap();
        phone.switch_to_hidden("hidden").unwrap();
        let vol = phone.data_volume().unwrap().clone();
        vol.write_block(3, &vec![0x77; 4096]).unwrap();
        phone.exit_hidden_mode();
        phone.enter_boot_password("decoy").unwrap();
        phone.switch_to_hidden("hidden").unwrap();
        let vol = phone.data_volume().unwrap();
        assert_eq!(vol.read_block(3).unwrap(), vec![0x77; 4096]);
    }

    #[test]
    fn side_channel_protection_keeps_public_logs_clean() {
        let mut phone = ready_phone(8);
        phone.enter_boot_password("decoy").unwrap();
        phone.record_activity("browsing");
        phone.switch_to_hidden("hidden").unwrap();
        phone.record_activity("editing secret_report.pdf");
        phone.exit_hidden_mode();
        assert!(!phone.logs().persistent_mentions("secret_report"));
        assert!(!phone.logs().persistent_mentions("hidden volume"));
        assert!(phone.logs().ram().is_empty(), "reboot cleared RAM");
    }

    #[test]
    fn unprotected_phone_leaks_hidden_traces() {
        let clock = SimClock::new();
        let mut phone =
            AndroidPhone::new(clock, 4096, 4096, fast_config()).without_side_channel_protection();
        phone.initialize_mobiceal("decoy", &["hidden"], 9).unwrap();
        phone.enter_boot_password("decoy").unwrap();
        phone.switch_to_hidden("hidden").unwrap();
        phone.record_activity("editing secret_report.pdf");
        phone.exit_hidden_mode();
        assert!(
            phone.logs().persistent_mentions("secret_report"),
            "the HIVE/DEFY-style configuration must exhibit the leak"
        );
    }

    #[test]
    fn power_on_from_cold() {
        let clock = SimClock::new();
        let mut phone = AndroidPhone::new(clock, 4096, 4096, fast_config());
        phone.initialize_mobiceal("decoy", &[], 10).unwrap();
        phone.reboot();
        assert_eq!(phone.state(), PhoneState::PreBootAuth);
        assert!(phone.enter_boot_password("decoy").is_ok());
    }

    #[test]
    fn public_writes_on_phone_generate_dummies() {
        let mut phone = ready_phone(11);
        phone.enter_boot_password("decoy").unwrap();
        let vol = phone.data_volume().unwrap().clone();
        for i in 0..300 {
            vol.write_block(i, &vec![1u8; 4096]).unwrap();
        }
        let stats = phone.mobiceal().unwrap().dummy_stats();
        assert_eq!(stats.trigger_checks, 300);
    }
}
