//! The Vold command interface (§V-B).
//!
//! Users activate MobiCeal through `vdc`, Android's volume-daemon client:
//!
//! ```text
//! vdc cryptfs pde wipe <pub_pwd> <num_vol> <hid_pwds>
//! vdc cryptfs checkpw <pwd>
//! vdc cryptfs pde switch <pwd>
//! ```
//!
//! [`vdc`] parses exactly those command lines and drives an
//! [`AndroidPhone`], returning Vold-style numeric response codes — `200 0`
//! for success, `200 -1` for a verification failure (the value the paper's
//! switching function returns for a wrong password), and `500` for command
//! errors.

use crate::phone::{AndroidPhone, PhoneState};
use mobiceal::MobiCealError;

/// Result of one `vdc` invocation: the raw response line plus the parsed
/// outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VdcResponse {
    /// Vold wire response, e.g. `"200 0 0"`.
    pub line: String,
    /// Whether the command succeeded.
    pub ok: bool,
}

impl VdcResponse {
    fn ok(detail: &str) -> Self {
        VdcResponse { line: format!("200 0 {detail}"), ok: true }
    }

    fn denied() -> Self {
        // The paper's switch function "simply returns -1" on a wrong
        // password.
        VdcResponse { line: "200 0 -1".into(), ok: false }
    }

    fn error(msg: &str) -> Self {
        VdcResponse { line: format!("500 0 {msg}"), ok: false }
    }
}

/// Executes one `vdc` command line against `phone`.
///
/// Supported commands (the set the paper's prototype adds/uses):
///
/// * `cryptfs pde wipe <pub_pwd> <num_vol> [hid_pwds_csv]` — initialize
///   MobiCeal (destroys existing data, reboots to the password prompt).
/// * `cryptfs checkpw <pwd>` — pre-boot authentication.
/// * `cryptfs pde switch <pwd>` — the screen-lock fast switch to hidden
///   mode.
pub fn vdc(phone: &mut AndroidPhone, command_line: &str) -> VdcResponse {
    let args: Vec<&str> = command_line.split_whitespace().collect();
    match args.as_slice() {
        ["cryptfs", "pde", "wipe", pub_pwd, num_vol, rest @ ..] => {
            let Ok(n) = num_vol.parse::<u32>() else {
                return VdcResponse::error("bad volume count");
            };
            if n != phone_config_volumes(phone) {
                return VdcResponse::error("volume count does not match device policy");
            }
            let hidden: Vec<&str> = match rest {
                [] => Vec::new(),
                [csv] => csv.split(',').filter(|s| !s.is_empty()).collect(),
                _ => return VdcResponse::error("too many arguments"),
            };
            let seed = 0xB01D;
            match phone.initialize_mobiceal(pub_pwd, &hidden, seed) {
                Ok(t) => VdcResponse::ok(&format!("{t}")),
                Err(e) => VdcResponse::error(&e.to_string()),
            }
        }
        ["cryptfs", "checkpw", pwd] => {
            if phone.state() != PhoneState::PreBootAuth {
                return VdcResponse::error("not at password prompt");
            }
            match phone.enter_boot_password(pwd) {
                Ok(t) => VdcResponse::ok(&format!("{t}")),
                Err(MobiCealError::BadPassword) => VdcResponse::denied(),
                Err(e) => VdcResponse::error(&e.to_string()),
            }
        }
        ["cryptfs", "pde", "switch", pwd] => {
            if phone.state() != PhoneState::PublicMode {
                return VdcResponse::error("switching requires public mode");
            }
            match phone.switch_to_hidden(pwd) {
                Ok(t) => VdcResponse::ok(&format!("{t}")),
                Err(MobiCealError::BadPassword) => VdcResponse::denied(),
                Err(e) => VdcResponse::error(&e.to_string()),
            }
        }
        _ => VdcResponse::error("unknown command"),
    }
}

fn phone_config_volumes(_phone: &AndroidPhone) -> u32 {
    // The phone owns its MobiCealConfig; the vdc wire protocol repeats the
    // count for operator confirmation. We read it back via the phone's
    // device when available; before initialization the phone's configured
    // value is authoritative and any count is accepted by returning it.
    _phone.config_volumes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal::MobiCealConfig;
    use mobiceal_sim::SimClock;

    fn phone() -> AndroidPhone {
        let cfg = MobiCealConfig {
            num_volumes: 6,
            pbkdf2_iterations: 4,
            metadata_blocks: 64,
            ..Default::default()
        };
        AndroidPhone::new(SimClock::new(), 4096, 4096, cfg)
    }

    #[test]
    fn full_vdc_session() {
        let mut p = phone();
        let r = vdc(&mut p, "cryptfs pde wipe decoy 6 hidden-a,hidden-b");
        assert!(r.ok, "{r:?}");
        assert_eq!(p.state(), PhoneState::PreBootAuth);

        let r = vdc(&mut p, "cryptfs checkpw decoy");
        assert!(r.ok, "{r:?}");
        assert_eq!(p.state(), PhoneState::PublicMode);

        let r = vdc(&mut p, "cryptfs pde switch hidden-b");
        assert!(r.ok, "{r:?}");
        assert_eq!(p.state(), PhoneState::HiddenMode);
    }

    #[test]
    fn wrong_passwords_return_minus_one() {
        let mut p = phone();
        vdc(&mut p, "cryptfs pde wipe decoy 6 hidden");
        let r = vdc(&mut p, "cryptfs checkpw wrong");
        assert_eq!(r.line, "200 0 -1");
        assert!(!r.ok);
        vdc(&mut p, "cryptfs checkpw decoy");
        let r = vdc(&mut p, "cryptfs pde switch wrong");
        assert_eq!(r.line, "200 0 -1");
        assert_eq!(p.state(), PhoneState::PublicMode);
    }

    #[test]
    fn encryption_without_deniability_needs_no_hidden_passwords() {
        // §IV-B "User Steps": one password, no deniability.
        let mut p = phone();
        let r = vdc(&mut p, "cryptfs pde wipe onlypwd 6");
        assert!(r.ok, "{r:?}");
        assert!(vdc(&mut p, "cryptfs checkpw onlypwd").ok);
    }

    #[test]
    fn malformed_commands_rejected() {
        let mut p = phone();
        for cmd in [
            "cryptfs pde wipe",
            "cryptfs pde wipe pwd notanumber",
            "cryptfs pde wipe pwd 5",
            "cryptfs frobnicate",
            "",
            "cryptfs pde wipe pwd 6 a b c",
        ] {
            let r = vdc(&mut p, cmd);
            assert!(!r.ok, "{cmd:?} should fail: {r:?}");
            assert!(r.line.starts_with("500"), "{cmd:?} -> {r:?}");
        }
    }

    #[test]
    fn state_machine_guards() {
        let mut p = phone();
        vdc(&mut p, "cryptfs pde wipe decoy 6 hidden");
        // Switch before boot: refused.
        assert!(!vdc(&mut p, "cryptfs pde switch hidden").ok);
        vdc(&mut p, "cryptfs checkpw decoy");
        // checkpw while booted: refused.
        assert!(!vdc(&mut p, "cryptfs checkpw decoy").ok);
    }
}
