//! Android platform simulation.
//!
//! MobiCeal's prototype modifies three parts of Android 4.2 (§V of the
//! paper): the Linux kernel (done in `mobiceal-thinp`/`mobiceal`), the
//! volume daemon **Vold**, and the **screen lock** app. This crate models
//! the platform half:
//!
//! * [`AndroidPhone`] — a state machine over *PoweredOff → PreBootAuth →
//!   PublicMode → HiddenMode* implementing the paper's user flows:
//!   initialization (`vdc cryptfs pde wipe …`), pre-boot authentication,
//!   the screen-lock fast switch into hidden mode (framework restart, not
//!   reboot), and the mandatory reboot out of hidden mode.
//! * [`AndroidTimingModel`] — per-step costs (framework restart, reboot,
//!   mounts, in-place FDE encryption at nominal partition size) calibrated
//!   so the Table II experiment reproduces the paper's timing shapes.
//! * [`LogStore`] — the side-channel model of §IV-D: logs written while a
//!   volume is mounted land either on *persistent public storage*
//!   (`/devlog`, `/cache` — what HIVE/DEFY leak through) or on a *tmpfs RAM
//!   disk* (MobiCeal's countermeasure), which a reboot clears.
//!
//! # Example
//!
//! ```
//! use mobiceal_android::{AndroidPhone, PhoneState};
//! use mobiceal::MobiCealConfig;
//! use mobiceal_sim::SimClock;
//!
//! let clock = SimClock::new();
//! let cfg = MobiCealConfig { pbkdf2_iterations: 4, metadata_blocks: 64, ..Default::default() };
//! let mut phone = AndroidPhone::new(clock, 4096, 4096, cfg);
//! phone.initialize_mobiceal("decoy", &["hidden"], 7)?;
//! phone.power_on();
//! phone.enter_boot_password("decoy")?;
//! assert_eq!(phone.state(), PhoneState::PublicMode);
//! let switch_time = phone.switch_to_hidden("hidden")?;
//! assert!(switch_time.as_secs_f64() < 10.0, "fast switch beats 10 s");
//! # Ok::<(), mobiceal::MobiCealError>(())
//! ```

#![forbid(unsafe_code)]

mod logs;
mod phone;
mod timing;
mod vold;

pub use logs::{LogSink, LogStore};
pub use phone::{AndroidPhone, PhoneState};
pub use timing::AndroidTimingModel;
pub use vold::{vdc, VdcResponse};
