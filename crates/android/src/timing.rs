//! Per-step platform timing, calibrated against Table II of the paper.
//!
//! Measured values being reproduced (means on the Nexus 4):
//!
//! | flow                      | Android FDE | MobiPluto | MobiCeal |
//! |---------------------------|-------------|-----------|----------|
//! | initialization            | 18 min 23 s | 37 min 2 s| 2 min 16 s |
//! | booting (decoy password)  | 0.29 s      | 1.36 s    | 1.68 s   |
//! | switch into hidden mode   | n/a         | 68 s      | 9.27 s   |
//! | switch out of hidden mode | n/a         | 64 s      | 63 s     |
//!
//! The model is mechanistic: each flow is a sequence of steps (wipe, LVM
//! setup, PBKDF2, mounts, framework restart, reboot) whose individual costs
//! below were chosen once; the per-flow totals then *emerge* from the step
//! sequences in [`crate::AndroidPhone`].

use mobiceal_sim::SimDuration;

/// Cost of each platform step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AndroidTimingModel {
    /// Size of the real userdata partition being modelled. Bulk steps
    /// (in-place encryption, random fill) charge time for this nominal
    /// size even though the simulated disk is smaller.
    pub nominal_partition_bytes: u64,
    /// In-place AES encryption rate of the Android FDE enablement pass.
    pub fde_encrypt_bytes_per_sec: u64,
    /// Rate of overwriting the disk with randomness (MobiPluto/Mobiflage
    /// initialization).
    pub random_fill_bytes_per_sec: u64,
    /// `lvm`/`dm-thin` pool and volume creation during initialization.
    pub lvm_setup: SimDuration,
    /// Making the initial Ext4 file system.
    pub mkfs: SimDuration,
    /// Full device reboot (bootloader + kernel + Android framework).
    pub full_reboot: SimDuration,
    /// Stopping the Android framework (fast-switch path).
    pub framework_stop: SimDuration,
    /// Starting the Android framework (fast-switch path).
    pub framework_start: SimDuration,
    /// Kernel-level activation of the thin pool at boot.
    pub thin_pool_activation: SimDuration,
    /// Additional activation cost per thin volume.
    pub per_volume_activation: SimDuration,
    /// Creating the dm-crypt mapping once the key is known.
    pub dm_crypt_setup: SimDuration,
    /// (Un)mounting one file system.
    pub mount: SimDuration,
    /// Mounting a tmpfs RAM disk over `/devlog` or `/cache`.
    pub tmpfs_mount: SimDuration,
    /// One `vdc` command round trip to Vold.
    pub vdc_call: SimDuration,
}

impl Default for AndroidTimingModel {
    fn default() -> Self {
        Self::nexus4()
    }
}

impl AndroidTimingModel {
    /// Calibration for the paper's LG Nexus 4 (13.7 GB userdata).
    pub fn nexus4() -> Self {
        AndroidTimingModel {
            nominal_partition_bytes: 13_700 * 1024 * 1024,
            // 13.7 GB / 18.3 min ≈ 12.8 MB/s for dm-crypt in-place encryption.
            fde_encrypt_bytes_per_sec: 13_000_000,
            // 13.7 GB / ~35.5 min ≈ 6.6 MB/s for urandom-quality fill.
            random_fill_bytes_per_sec: 6_600_000,
            lvm_setup: SimDuration::from_secs(50),
            mkfs: SimDuration::from_secs(18),
            full_reboot: SimDuration::from_secs(61),
            framework_stop: SimDuration::from_millis(900),
            framework_start: SimDuration::from_millis(7_800),
            thin_pool_activation: SimDuration::from_millis(850),
            per_volume_activation: SimDuration::from_millis(90),
            dm_crypt_setup: SimDuration::from_millis(120),
            mount: SimDuration::from_millis(60),
            tmpfs_mount: SimDuration::from_millis(15),
            vdc_call: SimDuration::from_millis(25),
        }
    }

    /// Calibration for the Huawei Nexus 6P (Android 7.1.2, Linux 3.10) the
    /// paper ran its availability test on (§V): a faster SoC and storage
    /// part, a larger userdata partition, and a slightly quicker framework.
    pub fn nexus6p() -> Self {
        AndroidTimingModel {
            nominal_partition_bytes: 58_000 * 1024 * 1024,
            fde_encrypt_bytes_per_sec: 60_000_000,
            random_fill_bytes_per_sec: 25_000_000,
            lvm_setup: SimDuration::from_secs(40),
            mkfs: SimDuration::from_secs(12),
            full_reboot: SimDuration::from_secs(45),
            framework_stop: SimDuration::from_millis(700),
            framework_start: SimDuration::from_millis(6_200),
            thin_pool_activation: SimDuration::from_millis(600),
            per_volume_activation: SimDuration::from_millis(60),
            dm_crypt_setup: SimDuration::from_millis(90),
            mount: SimDuration::from_millis(45),
            tmpfs_mount: SimDuration::from_millis(10),
            vdc_call: SimDuration::from_millis(20),
        }
    }

    /// Time for the FDE enablement pass to encrypt the whole (nominal)
    /// partition in place.
    pub fn fde_inplace_encrypt(&self) -> SimDuration {
        SimDuration::from_secs_f64(
            self.nominal_partition_bytes as f64 / self.fde_encrypt_bytes_per_sec as f64,
        )
    }

    /// Time for a full-disk random fill (the hidden-volume PDE
    /// initialization step MobiCeal *avoids*).
    pub fn full_random_fill(&self) -> SimDuration {
        SimDuration::from_secs_f64(
            self.nominal_partition_bytes as f64 / self.random_fill_bytes_per_sec as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_steps_land_in_paper_band() {
        let t = AndroidTimingModel::nexus4();
        let fde_min = t.fde_inplace_encrypt().as_secs_f64() / 60.0;
        assert!((16.0..21.0).contains(&fde_min), "FDE init {fde_min:.1} min");
        let fill_min = t.full_random_fill().as_secs_f64() / 60.0;
        assert!((30.0..40.0).contains(&fill_min), "random fill {fill_min:.1} min");
    }

    #[test]
    fn fast_switch_steps_sum_below_ten_seconds() {
        let t = AndroidTimingModel::nexus4();
        let switch = t.framework_stop
            + t.mount * 3 // unmount /data /cache /devlog
            + t.tmpfs_mount * 2
            + t.dm_crypt_setup
            + t.mount
            + t.framework_start;
        assert!(switch.as_secs_f64() < 10.0, "fast switch {switch}");
        assert!(switch.as_secs_f64() > 8.0, "fast switch should not be implausibly quick");
    }

    #[test]
    fn reboot_dominates_switch_out() {
        let t = AndroidTimingModel::nexus4();
        assert!(t.full_reboot.as_secs_f64() > 55.0);
    }
}
