//! A6 `secret_taint` — secret-derived values must not feed charged time.
//!
//! The paper's deniability argument requires that observable timing be a
//! function of *traffic shape only*: if a key, password or other secret
//! ever parameterizes a `CostModel::cost`/`batch_cost`/
//! `batch_cost_at_depth` charge or a `SimClock::advance`, the
//! multi-snapshot adversary gains a timing distinguisher between worlds.
//! The runtime deniability tier proves specific shapes world-independent;
//! this pass is the *advisory sweep* that lists every call site where a
//! secret-looking identifier appears directly in a charged-time argument
//! list, machine-readable (`--json`) for the deniability tier to
//! cross-check.
//!
//! Warn-level by construction: the match is a naming convention
//! (`key`, `password`, `salt`, ... as `_`-separated segments), not a
//! dataflow proof. Suppress a reviewed site with
//! `analyzer: allow(secret_taint, reason = "...")`.

use crate::diag::{Finding, Level};
use crate::lexer::TokKind;
use crate::workspace::Workspace;

/// Functions whose arguments become charged simulated time.
const SINKS: [&str; 5] = ["cost", "batch_cost", "batch_cost_at_depth", "advance", "charge"];

/// `_`-separated identifier segments that mark a value as secret-derived.
const SECRET_SEGMENTS: [&str; 10] = [
    "secret",
    "password",
    "passwd",
    "passphrase",
    "pin",
    "credential",
    "credentials",
    "salt",
    "key",
    "keys",
];

fn is_secret_ident(name: &str) -> bool {
    name.split('_').any(|seg| SECRET_SEGMENTS.contains(&seg.to_ascii_lowercase().as_str()))
}

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        for (i, t) in f.tokens.iter().enumerate() {
            let TokKind::Ident(name) = &t.kind else { continue };
            if !SINKS.contains(&name.as_str()) || !f.punct_at(i + 1, '(') {
                continue;
            }
            // Skip definitions (`fn cost(...)`) — only call sites sink.
            if f.ident_at(i.wrapping_sub(1)) == Some("fn") {
                continue;
            }
            if f.in_test_span(i) {
                continue;
            }
            let Some(close) = f.match_delim(i + 1, '(', ')') else { continue };
            let tainted: Vec<&str> = (i + 2..close)
                .filter_map(|k| f.ident_at(k))
                .filter(|id| is_secret_ident(id))
                .collect();
            if tainted.is_empty() || f.allowed("secret_taint", t.line) {
                continue;
            }
            out.push(Finding {
                rule: "A6/secret_taint",
                level: Level::Warn,
                file: f.rel_path.clone(),
                line: t.line,
                message: format!(
                    "secret-named value{} `{}` flow{} into charged-time sink `{name}(...)`; \
                     verify the charge is world-independent (deniability tier) or rename",
                    if tainted.len() == 1 { "" } else { "s" },
                    tainted.join("`, `"),
                    if tainted.len() == 1 { "s" } else { "" },
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::is_secret_ident;

    #[test]
    fn segment_matching_avoids_substring_false_positives() {
        assert!(is_secret_ident("hidden_key"));
        assert!(is_secret_ident("round_keys"));
        assert!(is_secret_ident("PASSWORD"));
        assert!(is_secret_ident("salt"));
        assert!(!is_secret_ident("keystream_len"), "prefix does not taint");
        assert!(!is_secret_ident("pinned"), "substring does not taint");
        assert!(!is_secret_ident("monkey"), "suffix does not taint");
        assert!(!is_secret_ident("blocks"));
    }
}
