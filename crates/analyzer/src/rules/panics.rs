//! A3 `panic_freedom` — no panics on the foreground I/O path.
//!
//! The hot-path modules sit under every workload's read/write and must
//! surface failures as `BlockDeviceError`/`McError`, never abort: a
//! panic mid-batch poisons nothing visible (parking_lot) but tears down
//! the tenant thread, and on the real product would crash the storage
//! daemon. `unwrap`, `expect`, `panic!`, `unreachable!`, `todo!` and
//! `unimplemented!` are banned in non-test code of the designated
//! modules; a genuinely unreachable arm keeps a
//! `analyzer: allow(panic_freedom, reason = "...")` stating *why* it is
//! unreachable.
//!
//! `unwrap_or`/`unwrap_or_else`/`unwrap_or_default` are distinct
//! identifiers and deliberately not matched.

use crate::diag::{Finding, Level};
use crate::lexer::TokKind;
use crate::workspace::Workspace;

/// The designated hot-path modules: (crate name, file name).
pub const HOT_FILES: [(&str, &str); 8] = [
    ("mobiceal-blockdev", "memdisk.rs"),
    ("mobiceal-blockdev", "engine.rs"),
    ("mobiceal-blockdev", "cache.rs"),
    ("mobiceal-blockdev", "device.rs"),
    ("mobiceal-dm", "crypt.rs"),
    ("mobiceal-thinp", "pool.rs"),
    ("mobiceal", "pde_volume.rs"),
    ("mobiceal", "device.rs"),
];

const BANNED_METHODS: [&str; 2] = ["unwrap", "expect"];
const BANNED_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        let designated =
            HOT_FILES.iter().any(|&(c, name)| c == f.crate_name && name == f.file_name());
        if !designated {
            continue;
        }
        for (i, t) in f.tokens.iter().enumerate() {
            let TokKind::Ident(name) = &t.kind else { continue };
            let hit = if BANNED_METHODS.contains(&name.as_str()) {
                f.punct_at(i.wrapping_sub(1), '.') && f.punct_at(i + 1, '(')
            } else if BANNED_MACROS.contains(&name.as_str()) {
                f.punct_at(i + 1, '!')
            } else {
                false
            };
            if !hit || f.in_test_span(i) {
                continue;
            }
            let line = t.line;
            if f.allowed("panic_freedom", line) {
                continue;
            }
            let call = if BANNED_MACROS.contains(&name.as_str()) {
                format!("{name}!")
            } else {
                format!(".{name}()")
            };
            out.push(Finding {
                rule: "A3/panic_freedom",
                level: Level::Deny,
                file: f.rel_path.clone(),
                line,
                message: format!(
                    "`{call}` in hot-path module {}: propagate a BlockDeviceError/McError \
                     instead, or annotate `analyzer: allow(panic_freedom, reason = \"...\")` \
                     stating why this cannot fire",
                    f.file_name()
                ),
            });
        }
    }
}
