//! A1 `default_forwarding` — wrapper-forwarding completeness.
//!
//! Every production `impl BlockDevice for ...` must explicitly implement
//! (or explicitly forward) the vectored batch methods and the host-queue
//! hooks. The trait default-implements all five, which is exactly the
//! trap: a new wrapper that forgets them still compiles, silently breaks
//! batch amortization (`read_blocks`/`write_blocks` fall back to
//! per-block loops) or the engine's queue-depth signal
//! (`host_queue_enter`/`leave` stop reaching the medium — the regression
//! PR 8 caught at runtime, now caught here).
//!
//! Escape: `// analyzer: allow(default_forwarding, reason = "...")` on
//! the impl, for devices that genuinely want per-block defaults.

use crate::diag::{Finding, Level};
use crate::workspace::Workspace;

/// The methods a wrapper must pin down. `read_block`/`write_block` and
/// the geometry methods are required by the compiler (no defaults), so
/// only the silently-defaultable five need auditing.
pub const REQUIRED: [&str; 5] =
    ["read_blocks", "write_blocks", "flush", "host_queue_enter", "host_queue_leave"];

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        for im in &f.impls {
            if im.trait_name.as_deref() != Some("BlockDevice") {
                continue;
            }
            if f.in_test_span(im.body.0) {
                continue;
            }
            let missing: Vec<&str> = REQUIRED
                .iter()
                .filter(|m| !im.methods.iter().any(|have| have == *m))
                .copied()
                .collect();
            if missing.is_empty() || f.allowed("default_forwarding", im.line) {
                continue;
            }
            out.push(Finding {
                rule: "A1/default_forwarding",
                level: Level::Deny,
                file: f.rel_path.clone(),
                line: im.line,
                message: format!(
                    "`impl BlockDevice` relies on default bodies for {}; forward them \
                     explicitly so batching and host-queue depth survive this layer, or \
                     annotate `analyzer: allow(default_forwarding, reason = \"...\")`",
                    missing.join(", ")
                ),
            });
        }
    }
}

/// Number of production `impl BlockDevice` sites audited — pinned by the
/// self-tests so the rule can never silently stop matching.
pub fn audited_sites(ws: &Workspace) -> usize {
    ws.files
        .iter()
        .flat_map(|f| f.impls.iter().map(move |im| (f, im)))
        .filter(|(f, im)| {
            im.trait_name.as_deref() == Some("BlockDevice") && !f.in_test_span(im.body.0)
        })
        .count()
}
