//! A5 `safety_comment` — unsafe discipline.
//!
//! Three checks:
//!
//! 1. Every `unsafe` block, fn, impl or trait carries an adjacent
//!    justification: a `// SAFETY:` comment (or a `# Safety` doc
//!    section) on the same line or in the contiguous comment/attribute
//!    run directly above.
//! 2. Crates with no `unsafe` at all must say so in their
//!    `src/lib.rs`: `#![forbid(unsafe_code)]`, so the first future
//!    `unsafe` is a conscious, reviewed decision rather than drift.
//!    Today that is every crate except `mobiceal-crypto`.
//! 3. Crates that *do* contain `unsafe` must carry
//!    `#![deny(unsafe_op_in_unsafe_fn)]`, so an `unsafe fn` body still
//!    scopes each dangerous operation in an explicit block.

use crate::diag::{Finding, Level};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;
use std::collections::BTreeMap;

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        for (i, t) in f.tokens.iter().enumerate() {
            if t.kind != TokKind::Ident("unsafe".into()) {
                continue;
            }
            let line = t.line;
            if has_safety_justification(f, line) || f.allowed("safety_comment", line) {
                continue;
            }
            let what = match f.ident_at(i + 1) {
                Some("fn") => "unsafe fn",
                Some("impl") => "unsafe impl",
                Some("trait") => "unsafe trait",
                _ => "unsafe block",
            };
            out.push(Finding {
                rule: "A5/safety_comment",
                level: Level::Deny,
                file: f.rel_path.clone(),
                line,
                message: format!(
                    "{what} without an adjacent `// SAFETY:` comment (or `# Safety` doc \
                     section) stating the invariant that makes it sound"
                ),
            });
        }
    }
    crate_level(ws, out);
}

/// A justification counts when a comment containing `SAFETY:` or
/// `# Safety` ends on `line`, or lies in the contiguous run of
/// comment/attribute-only lines directly above it.
fn has_safety_justification(f: &SourceFile, line: u32) -> bool {
    let mut justified_lines: BTreeMap<u32, bool> = BTreeMap::new();
    for c in &f.comments {
        let hit = c.text.contains("SAFETY:") || c.text.contains("# Safety");
        for l in c.start_line..=c.end_line {
            *justified_lines.entry(l).or_insert(false) |= hit;
        }
    }
    // Same line (trailing comment).
    if justified_lines.get(&line).copied().unwrap_or(false) {
        return true;
    }
    // Walk upward through lines that carry no non-attribute code.
    let mut l = line.saturating_sub(1);
    while l > 0 && !f.code_lines.contains(&l) {
        if justified_lines.get(&l).copied().unwrap_or(false) {
            return true;
        }
        l -= 1;
    }
    false
}

fn crate_level(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut by_crate: BTreeMap<&str, (bool, Option<&SourceFile>)> = BTreeMap::new();
    for f in &ws.files {
        let entry = by_crate.entry(&f.crate_name).or_insert((false, None));
        entry.0 |= f.has_unsafe;
        if f.rel_path.ends_with("src/lib.rs") {
            entry.1 = Some(f);
        }
    }
    for (krate, (has_unsafe, lib)) in by_crate {
        let Some(lib) = lib else { continue };
        let has_attr = |needles: &[&str]| {
            lib.inner_attrs.iter().any(|a| needles.iter().all(|n| a.contains(n)))
        };
        if !has_unsafe && !has_attr(&["forbid", "unsafe_code"]) {
            out.push(Finding {
                rule: "A5/safety_comment",
                level: Level::Deny,
                file: lib.rel_path.clone(),
                line: 1,
                message: format!(
                    "crate `{krate}` contains no unsafe code but does not declare \
                     `#![forbid(unsafe_code)]` in its lib.rs"
                ),
            });
        }
        if has_unsafe && !has_attr(&["deny", "unsafe_op_in_unsafe_fn"]) {
            out.push(Finding {
                rule: "A5/safety_comment",
                level: Level::Deny,
                file: lib.rel_path.clone(),
                line: 1,
                message: format!(
                    "crate `{krate}` contains unsafe code but does not declare \
                     `#![deny(unsafe_op_in_unsafe_fn)]` in its lib.rs"
                ),
            });
        }
    }
}
