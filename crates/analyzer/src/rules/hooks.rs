//! A4 `test_hook` — test-only hooks never leak into production paths.
//!
//! Items gated behind `#[cfg(any(test, feature = "test-hooks"))]` (or a
//! bare `feature = "test-hooks"` gate) exist so properties can pin
//! deterministic twins of production behavior — `set_queue_depth_floor`
//! being the canonical example. Referencing one from ungated code either
//! fails to compile in production builds (best case) or silently changes
//! charged time when the feature is enabled (worst case: a benchmark run
//! with `--all-features` stops measuring the real depth signal).
//!
//! Pass 1 collects the names every hook span declares (`fn`/`struct`/
//! `const`/`static`/`type`/`mod` names, plus leading field names); pass 2
//! flags any ungated occurrence of those names anywhere in production
//! code. Name-collision false positives get
//! `analyzer: allow(test_hook, reason = "...")`.

use crate::diag::{Finding, Level};
use crate::lexer::TokKind;
use crate::workspace::Workspace;
use std::collections::BTreeSet;

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut hook_names: BTreeSet<String> = BTreeSet::new();
    for f in &ws.files {
        for &(start, end) in &f.hook_spans {
            // A leading `name :` is a field declaration or struct-literal
            // initializer for a gated field.
            if let (Some(name), true) = (f.ident_at(start), f.punct_at(start + 1, ':')) {
                hook_names.insert(name.to_string());
            }
            let mut k = start;
            while k < end.min(f.tokens.len()) {
                if let Some(kw) = f.ident_at(k) {
                    if matches!(kw, "fn" | "struct" | "enum" | "const" | "static" | "type" | "mod")
                    {
                        let name_idx = if f.ident_at(k + 1) == Some("mut") { k + 2 } else { k + 1 };
                        if let Some(name) = f.ident_at(name_idx) {
                            hook_names.insert(name.to_string());
                        }
                    }
                }
                k += 1;
            }
        }
    }
    if hook_names.is_empty() {
        return;
    }
    for f in &ws.files {
        for (i, t) in f.tokens.iter().enumerate() {
            let TokKind::Ident(name) = &t.kind else { continue };
            if !hook_names.contains(name) || f.in_hook_span(i) || f.in_test_span(i) {
                continue;
            }
            if f.allowed("test_hook", t.line) {
                continue;
            }
            out.push(Finding {
                rule: "A4/test_hook",
                level: Level::Deny,
                file: f.rel_path.clone(),
                line: t.line,
                message: format!(
                    "`{name}` is declared under a test-hooks cfg gate but referenced from \
                     production code; gate the reference or stop depending on the hook"
                ),
            });
        }
    }
}
