//! The rule passes. Each pass walks the parsed [`Workspace`] and appends
//! [`Finding`]s; the catalog lives in `DESIGN.md` §"Static analysis &
//! invariant lints".
//!
//! | id | name | level | contract |
//! |----|------|-------|----------|
//! | A1 | `default_forwarding` | deny | every `impl BlockDevice` forwards the vectored batch + host-queue methods |
//! | A2 | `lock_order` | deny | thinp directory → volume → allocator; MemDisk shard discipline |
//! | A3 | `panic_freedom` | deny | no `unwrap`/`expect`/`panic!`/`unreachable!` in hot-path modules |
//! | A4 | `test_hook` | deny | `test-hooks`-gated items never referenced from production code |
//! | A5 | `safety_comment` | deny | every `unsafe` justified; unsafe-free crates forbid unsafe |
//! | A6 | `secret_taint` | warn | secret-named values never feed charged-time computation |

pub mod forwarding;
pub mod hooks;
pub mod locks;
pub mod panics;
pub mod taint;
pub mod unsafety;

use crate::diag::{Finding, Level};
use crate::workspace::Workspace;

/// The annotation-facing rule names (what `analyzer: allow(<name>, ...)`
/// accepts). `annotation` is the meta-rule for malformed escapes.
pub const RULE_NAMES: [&str; 7] = [
    "default_forwarding",
    "lock_order",
    "panic_freedom",
    "test_hook",
    "safety_comment",
    "secret_taint",
    "annotation",
];

/// Runs every pass over the workspace, including annotation validation.
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    annotations(ws, &mut out);
    forwarding::run(ws, &mut out);
    locks::run(ws, &mut out);
    panics::run(ws, &mut out);
    hooks::run(ws, &mut out);
    unsafety::run(ws, &mut out);
    taint::run(ws, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// The meta-pass: malformed annotations and annotations naming unknown
/// rules are themselves deny findings, so a typo'd escape can never
/// silently grant itself.
fn annotations(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        for bad in &f.bad_annotations {
            out.push(Finding {
                rule: "A0/annotation",
                level: Level::Deny,
                file: f.rel_path.clone(),
                line: bad.line,
                message: bad.why.clone(),
            });
        }
        for a in &f.annotations {
            if !RULE_NAMES.contains(&a.rule.as_str()) {
                out.push(Finding {
                    rule: "A0/annotation",
                    level: Level::Deny,
                    file: f.rel_path.clone(),
                    line: a.line,
                    message: format!(
                        "allow({}) names no rule; known rules: {}",
                        a.rule,
                        RULE_NAMES.join(", ")
                    ),
                });
            }
        }
    }
}
