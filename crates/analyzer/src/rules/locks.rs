//! A2 `lock_order` — the deadlock discipline, statically.
//!
//! Two lock families carry documented acquisition orders (DESIGN.md
//! "Concurrency architecture"):
//!
//! * **thinp** — directory `RwLock` → per-volume mapping `Mutex`es
//!   (ascending id, enforced by iterating the directory's `BTreeMap`) →
//!   allocator/metadata `Mutex`. Within one function body the rank of
//!   successive acquisitions must be non-decreasing; dropping down
//!   (e.g. taking the directory lock while holding the allocator) is the
//!   classic deadlock against `commit`'s full cut.
//! * **MemDisk** — shard locks are only provably ordered two ways: a
//!   full ascending sweep (`shards.iter()...lock()`) or exactly one
//!   indexed shard per body. Two indexed acquisitions in one body cannot
//!   be shown ascending; an indexed acquisition after a sweep would
//!   self-deadlock; and the command lock must be taken at most once per
//!   body (a plan that drops and re-takes it lets another command
//!   interleave into the serial state mid-plan).
//!
//! The scan is body-local and does not model guard drops — release-then-
//! reacquire-lower patterns are flagged too, by design: they are exactly
//! the refactors that should be conscious. Escape with
//! `analyzer: allow(lock_order, reason = "...")` on the acquisition line.

use crate::diag::{Finding, Level};
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Lock classes of the thinp hierarchy, identified by the final
/// receiver identifier of the acquisition call.
const THINP_RANKS: [(&str, &[&str], u8, &str); 6] = [
    ("directory", &["read", "write"], 1, "directory"),
    ("handle", &["lock"], 2, "per-volume"),
    ("vol", &["lock"], 2, "per-volume"),
    ("volume", &["lock"], 2, "per-volume"),
    ("stale", &["lock"], 2, "per-volume"),
    ("alloc", &["lock"], 3, "allocator"),
];

pub fn run(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        let thinp = f.crate_name == "mobiceal-thinp";
        let memdisk = f.crate_name == "mobiceal-blockdev" && f.file_name() == "memdisk.rs";
        if !thinp && !memdisk {
            continue;
        }
        for item in &f.fns {
            let Some(body) = item.body else { continue };
            if f.in_test_span(body.0) {
                continue;
            }
            if thinp {
                check_thinp_body(f, body, out);
            }
            if memdisk {
                check_memdisk_body(f, body, out);
            }
        }
    }
}

/// An acquisition `recv.method(` at token index `i` (the receiver ident).
fn acquisition(f: &SourceFile, i: usize) -> Option<(&str, &str)> {
    let recv = f.ident_at(i)?;
    if !f.punct_at(i + 1, '.') {
        return None;
    }
    let method = f.ident_at(i + 2)?;
    if !f.punct_at(i + 3, '(') {
        return None;
    }
    Some((recv, method))
}

fn check_thinp_body(f: &SourceFile, body: (usize, usize), out: &mut Vec<Finding>) {
    let mut max_rank: u8 = 0;
    let mut held_desc = "";
    for i in body.0..body.1 {
        let Some((recv, method)) = acquisition(f, i) else { continue };
        let Some(&(_, _, rank, desc)) = THINP_RANKS
            .iter()
            .find(|(name, methods, _, _)| *name == recv && methods.contains(&method))
        else {
            continue;
        };
        let line = f.line_of(i);
        if rank < max_rank && !f.allowed("lock_order", line) {
            out.push(Finding {
                rule: "A2/lock_order",
                level: Level::Deny,
                file: f.rel_path.clone(),
                line,
                message: format!(
                    "{desc} lock acquired after the {held_desc} lock in `{}`; the documented \
                     order is directory → per-volume (ascending) → allocator",
                    fn_name_of(f, body)
                ),
            });
        }
        if rank > max_rank {
            max_rank = rank;
            held_desc = desc;
        }
    }
}

fn check_memdisk_body(f: &SourceFile, body: (usize, usize), out: &mut Vec<Finding>) {
    let mut indexed_shard_lines: Vec<u32> = Vec::new();
    let mut sweep_seen = false;
    let mut cmd_lines: Vec<u32> = Vec::new();
    let mut i = body.0;
    while i < body.1 {
        if let Some(("cmd", "lock")) = acquisition(f, i) {
            cmd_lines.push(f.line_of(i));
        }
        if f.ident_at(i) == Some("shards") {
            // `shards.iter()` — the ascending full sweep.
            if f.punct_at(i + 1, '.') && f.ident_at(i + 2) == Some("iter") {
                sweep_seen = true;
            }
            // `shards[expr].lock(` — one indexed shard.
            if f.punct_at(i + 1, '[') {
                if let Some(close) = f.match_delim(i + 1, '[', ']') {
                    if f.punct_at(close + 1, '.') && f.ident_at(close + 2) == Some("lock") {
                        let line = f.line_of(i);
                        if sweep_seen && !f.allowed("lock_order", line) {
                            out.push(Finding {
                                rule: "A2/lock_order",
                                level: Level::Deny,
                                file: f.rel_path.clone(),
                                line,
                                message: format!(
                                    "indexed shard lock after a full-sweep acquisition in `{}` \
                                     would self-deadlock",
                                    fn_name_of(f, body)
                                ),
                            });
                        }
                        indexed_shard_lines.push(line);
                    }
                }
            }
        }
        i += 1;
    }
    if indexed_shard_lines.len() > 1 {
        let line = indexed_shard_lines[1];
        if !f.allowed("lock_order", line) {
            out.push(Finding {
                rule: "A2/lock_order",
                level: Level::Deny,
                file: f.rel_path.clone(),
                line,
                message: format!(
                    "`{}` takes {} single-shard locks in one body; multiple shards cannot be \
                     proven ascending — route through the `shards.iter()` ascending sweep or \
                     split the body",
                    fn_name_of(f, body),
                    indexed_shard_lines.len()
                ),
            });
        }
    }
    if cmd_lines.len() > 1 {
        let line = cmd_lines[1];
        if !f.allowed("lock_order", line) {
            out.push(Finding {
                rule: "A2/lock_order",
                level: Level::Deny,
                file: f.rel_path.clone(),
                line,
                message: format!(
                    "`{}` re-acquires the command lock; a plan must complete under one \
                     continuous guard (serial state may not be observed mid-plan)",
                    fn_name_of(f, body)
                ),
            });
        }
    }
}

/// Name of the fn owning `body` (for messages).
fn fn_name_of(f: &SourceFile, body: (usize, usize)) -> &str {
    f.fns
        .iter()
        .find(|item| item.body == Some(body))
        .map(|item| item.name.as_str())
        .unwrap_or("<fn>")
}

#[cfg(test)]
mod tests {
    #[test]
    fn rank_table_is_strictly_ordered_by_family() {
        // directory < volume < allocator, with all volume aliases equal.
        use super::THINP_RANKS;
        let rank_of = |n: &str| THINP_RANKS.iter().find(|r| r.0 == n).unwrap().2;
        assert!(rank_of("directory") < rank_of("handle"));
        assert_eq!(rank_of("handle"), rank_of("vol"));
        assert!(rank_of("vol") < rank_of("alloc"));
    }
}
