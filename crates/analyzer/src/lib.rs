//! `mobiceal-analyzer` — the stack's hand-enforced contracts as
//! CI-gated static checks.
//!
//! The MobiCeal stack rests on invariants that live in prose and review
//! discipline: every `BlockDevice` wrapper forwards the vectored batch
//! and host-queue methods, thinp takes its locks in directory →
//! per-volume → allocator order, the foreground I/O path never panics,
//! test hooks never leak into production, every `unsafe` is justified,
//! and secrets never parameterize charged time. Each of these fails
//! *silently* when the next wrapper or lock is added — the compiler is
//! happy, the tests pass, and the regression surfaces weeks later as a
//! degraded depth signal or a deadlock under load.
//!
//! This crate turns those contracts into deny-by-default lint passes
//! over a hand-rolled lexer and a coarse item model (zero dependencies —
//! the container has no registry). Run it as
//!
//! ```text
//! cargo run -p mobiceal-analyzer -- --workspace
//! ```
//!
//! Diagnostics are rustc-style `file:line`; any deny-level finding makes
//! the exit status non-zero, which is what the CI "Static analysis" step
//! gates on. See `DESIGN.md` §"Static analysis & invariant lints" for
//! the rule catalog and the `analyzer: allow(rule, reason = "...")`
//! annotation grammar.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use diag::{to_json, Finding, Level};
pub use workspace::{find_workspace_root, Workspace};

/// Convenience: analyze a set of in-memory files and return the
/// findings. The fixture self-tests are built on this.
pub fn analyze_memory(files: &[(&str, &str, &str)]) -> Vec<Finding> {
    Workspace::from_memory(files).analyze()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_workspace_is_clean() {
        assert!(analyze_memory(&[]).is_empty());
    }

    #[test]
    fn unknown_annotation_rule_is_a_deny_finding() {
        let findings = analyze_memory(&[(
            "x",
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\n// analyzer: allow(no_such_rule, reason = \"hm\")\nfn f() {}\n",
        )]);
        assert!(
            findings.iter().any(|f| f.rule == "A0/annotation" && f.level == Level::Deny),
            "{findings:?}"
        );
    }
}
