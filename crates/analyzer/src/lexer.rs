//! A minimal Rust lexer — just enough fidelity for coarse, line-anchored
//! invariant checks.
//!
//! The rule passes (see [`crate::rules`]) only need identifiers,
//! punctuation, literal *boundaries* (so that `"unwrap()"` inside a string
//! never looks like a call) and comments with exact line anchoring (so that
//! `// SAFETY:` and `// analyzer: allow(...)` attach to the right code).
//! Everything else a real lexer distinguishes — number bases, multi-char
//! operators, keyword classes — is deliberately collapsed: identifiers keep
//! their text, literals keep only their kind, operators come out one
//! `char` at a time.
//!
//! Handled faithfully because getting them wrong silently corrupts every
//! downstream rule: nested block comments, raw strings (`r#".."#`), byte
//! and C strings, char literals vs. lifetimes (`'a'` vs. `'a`), raw
//! identifiers (`r#type`), and line counting across multi-line tokens.

/// What a token is; identifiers and string literals keep their text (rules
/// match on names and on `feature = "test-hooks"` style cfg strings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unsafe`, `unwrap`, ...).
    Ident(String),
    /// A lifetime such as `'a` or `'_` (text dropped).
    Lifetime,
    /// A string, byte-string, C-string or char literal; the text is the
    /// raw source slice *without* the surrounding quotes/hashes.
    Str(String),
    /// A numeric literal (text dropped — no rule interprets numbers).
    Num,
    /// A single punctuation character (`.`, `!`, `{`, `<`, ...).
    Punct(char),
}

/// One token with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
}

/// One comment (line `//...` incl. doc forms, or block `/* ... */`
/// incl. nesting) with its line span and whether code preceded it on its
/// starting line (a *trailing* comment annotates its own line; a
/// stand-alone one annotates the next code line).
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub start_line: u32,
    pub end_line: u32,
    pub trailing: bool,
}

/// The result of [`lex`]: the code token stream plus the comment side
/// channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes `src`. Never fails: unrecognized bytes degrade to `Punct` tokens,
/// which at worst makes a rule miss a match in code that rustc would
/// reject anyway.
pub fn lex(src: &str) -> Lexed {
    Lexer { b: src.as_bytes(), src, i: 0, line: 1, line_had_token: false, out: Lexed::default() }
        .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    line_had_token: bool,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.line_had_token = false;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    let line = self.line;
                    let body = self.quoted_string();
                    self.push(TokKind::Str(body), line);
                }
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ => {
                    let line = self.line;
                    // Skip UTF-8 continuation bytes so a stray non-ASCII
                    // char degrades to one Punct, not several.
                    let ch = self.src[self.i..].chars().next().unwrap_or('?');
                    self.i += ch.len_utf8();
                    self.push(TokKind::Punct(if ch.is_ascii() { ch } else { '?' }), line);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, line: u32) {
        self.out.tokens.push(Token { kind, line });
        self.line_had_token = true;
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        self.out.comments.push(Comment {
            text: self.src[start..self.i].to_string(),
            start_line: self.line,
            end_line: self.line,
            trailing: self.line_had_token,
        });
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        let trailing = self.line_had_token;
        let mut depth = 1u32;
        self.i += 2;
        while self.i < self.b.len() && depth > 0 {
            match (self.b[self.i], self.peek(1)) {
                (b'\n', _) => {
                    self.line += 1;
                    self.line_had_token = false;
                    self.i += 1;
                }
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                _ => self.i += 1,
            }
        }
        self.out.comments.push(Comment {
            text: self.src[start..self.i].to_string(),
            start_line,
            end_line: self.line,
            trailing,
        });
    }

    /// `self.i` is on the opening `"`. Returns the body (quotes stripped).
    fn quoted_string(&mut self) -> String {
        self.i += 1;
        let start = self.i;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'"' => break,
                b'\n' => {
                    self.line += 1;
                    self.line_had_token = false;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        let body = self.src[start..self.i.min(self.b.len())].to_string();
        self.i += 1; // past the closing quote
        body
    }

    /// `self.i` is on the first `#` or `"` of a raw string (after an `r`,
    /// `br` or `cr` prefix has been consumed). Returns the body.
    fn raw_string(&mut self) -> String {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.i += 1;
        }
        self.i += 1; // opening quote
        let start = self.i;
        while self.i < self.b.len() {
            if self.b[self.i] == b'\n' {
                self.line += 1;
                self.line_had_token = false;
                self.i += 1;
                continue;
            }
            if self.b[self.i] == b'"' {
                let closes = (0..hashes).all(|k| self.peek(1 + k) == Some(b'#'));
                if closes {
                    let body = self.src[start..self.i].to_string();
                    self.i += 1 + hashes;
                    return body;
                }
            }
            self.i += 1;
        }
        self.src[start..].to_string()
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // `'a` (not followed by a closing quote) is a lifetime; everything
        // else — `'x'`, `'\n'`, `'\u{1F980}'`, `'∀'` — is a char literal.
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if is_ident_start(c) => self.peek(2) != Some(b'\''),
            _ => false,
        };
        if is_lifetime {
            self.i += 1;
            while self.peek(0).is_some_and(is_ident_cont) {
                self.i += 1;
            }
            self.push(TokKind::Lifetime, line);
            return;
        }
        self.i += 1;
        let start = self.i;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'\'' => break,
                _ => self.i += 1,
            }
        }
        let body = self.src[start..self.i.min(self.b.len())].to_string();
        self.i += 1;
        self.push(TokKind::Str(body), line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if is_ident_cont(c) {
                self.i += 1;
            } else if c == b'.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                seen_dot = true;
                self.i += 1;
            } else {
                break;
            }
        }
        self.push(TokKind::Num, line);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let start = self.i;
        while self.peek(0).is_some_and(is_ident_cont) {
            self.i += 1;
        }
        let name = &self.src[start..self.i];
        // Raw-string / byte-string / C-string prefixes, and raw idents.
        match (name, self.peek(0)) {
            ("r" | "br" | "cr", Some(b'"' | b'#')) => {
                if name == "r" && self.peek(0) == Some(b'#') && self.peek(1) != Some(b'"') {
                    // Raw identifier `r#type`: skip the hash, lex the name.
                    self.i += 1;
                    let s = self.i;
                    while self.peek(0).is_some_and(is_ident_cont) {
                        self.i += 1;
                    }
                    let raw = self.src[s..self.i].to_string();
                    self.push(TokKind::Ident(raw), line);
                } else {
                    let body = self.raw_string();
                    self.push(TokKind::Str(body), line);
                }
            }
            ("b" | "c", Some(b'"')) => {
                let body = self.quoted_string();
                self.push(TokKind::Str(body), line);
            }
            ("b", Some(b'\'')) => {
                self.char_or_lifetime();
            }
            _ => self.push(TokKind::Ident(name.to_string()), line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_their_contents_from_the_token_stream() {
        for src in [
            r#"let x = "call .unwrap() here";"#,
            r##"let x = r#"panic!("inside")"#;"##,
            r#"let x = b"unwrap";"#,
            "let x = '\\'';",
        ] {
            assert!(
                !idents(src).iter().any(|i| i == "unwrap" || i == "panic" || i == "inside"),
                "{src}"
            );
        }
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'a' }").tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| matches!(t.kind, TokKind::Str(_))).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn comments_track_lines_and_trailing() {
        let src = "let a = 1; // trailing\n// standalone\n/* multi\nline */ let b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 3);
        assert!(lexed.comments[0].trailing && lexed.comments[0].start_line == 1);
        assert!(!lexed.comments[1].trailing && lexed.comments[1].start_line == 2);
        let block = &lexed.comments[2];
        assert_eq!((block.start_line, block.end_line, block.trailing), (3, 4, false));
        // The `let b` after the block comment lands on line 4.
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Ident("b".into()) && t.line == 4));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lexed = lex("/* outer /* inner */ still outer */ fn f() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
        let _ = lexed;
    }

    #[test]
    fn numbers_do_not_swallow_range_operators() {
        let toks = lex("for i in 0..4 { a[i] = 1.5e3; }").tokens;
        let dots = toks.iter().filter(|t| t.kind == TokKind::Punct('.')).count();
        assert_eq!(dots, 2, "0..4 keeps both range dots");
    }

    #[test]
    fn cfg_feature_strings_survive() {
        let toks = lex(r#"#[cfg(any(test, feature = "test-hooks"))]"#).tokens;
        assert!(toks.iter().any(|t| t.kind == TokKind::Str("test-hooks".into())));
    }
}
