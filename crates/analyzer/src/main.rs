//! CLI entry point: `cargo run -p mobiceal-analyzer -- --workspace`.

#![forbid(unsafe_code)]

use mobiceal_analyzer::{find_workspace_root, to_json, Level, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
mobiceal-analyzer: invariant lints for the MobiCeal workspace

USAGE:
    cargo run -p mobiceal-analyzer -- --workspace [OPTIONS]

OPTIONS:
    --workspace        analyze the enclosing cargo workspace (required)
    --root <PATH>      start the workspace search here (default: cwd)
    --json             emit findings as JSON (machine-readable)
    --deny-warnings    treat warn-level findings (A6) as errors
    --help             this text

EXIT STATUS:
    0  clean (warnings may remain unless --deny-warnings)
    1  at least one deny-level finding
    2  usage or I/O error
";

fn main() -> ExitCode {
    let mut workspace_flag = false;
    let mut json = false;
    let mut deny_warnings = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace_flag = true,
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace_flag {
        return usage_error("pass --workspace to analyze the enclosing workspace");
    }

    let start = root.unwrap_or_else(|| PathBuf::from("."));
    let Some(ws_root) = find_workspace_root(&start) else {
        eprintln!("error: no `[workspace]` Cargo.toml found above {}", start.display());
        return ExitCode::from(2);
    };
    let ws = match Workspace::from_dir(&ws_root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: failed to read workspace sources: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = ws.analyze();

    if json {
        print!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}\n");
        }
    }
    let denies = findings.iter().filter(|f| f.level == Level::Deny).count();
    let warns = findings.len() - denies;
    if !json {
        println!("mobiceal-analyzer: {} files, {} deny, {} warn", ws.files.len(), denies, warns);
    }
    if denies > 0 || (deny_warnings && warns > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
