//! Workspace discovery: which files the analyzer walks.
//!
//! The production surface is every workspace member's `src/` tree —
//! `crates/*/src/**/*.rs` plus the umbrella crate's root `src/`.
//! Deliberately excluded:
//!
//! * `shims/` — offline stand-ins for registry crates; not ours to lint
//!   and frozen by policy.
//! * `tests/`, `benches/`, `examples/` — test code by definition; the
//!   production-only rules would be all noise there (in-file
//!   `#[cfg(test)]` regions of `src/` files are excluded per-span
//!   instead).
//! * `target/` and anything else outside the member list.

use crate::diag::Finding;
use crate::rules;
use crate::source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The parsed workspace the rule passes walk.
#[derive(Debug, Default)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Builds a workspace from in-memory sources: `(crate, rel_path,
    /// text)` triples. The fixture self-tests use this to run every rule
    /// against known-bad/known-good snippets.
    pub fn from_memory(files: &[(&str, &str, &str)]) -> Workspace {
        Workspace {
            files: files
                .iter()
                .map(|(krate, rel, text)| SourceFile::parse(krate, rel, text))
                .collect(),
        }
    }

    /// Walks the real workspace rooted at `root` (the directory holding
    /// the `[workspace]` `Cargo.toml`).
    pub fn from_dir(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        // Member crates under crates/.
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file() && p.join("src").is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let name = crate_name(&dir.join("Cargo.toml"))?;
            collect_rs(&dir.join("src"), root, &name, &mut files)?;
        }
        // The umbrella crate's own src/.
        if root.join("src").is_dir() {
            let name = crate_name(&root.join("Cargo.toml"))?;
            collect_rs(&root.join("src"), root, &name, &mut files)?;
        }
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Ok(Workspace { files })
    }

    /// Runs every rule pass; findings come back sorted by file/line.
    pub fn analyze(&self) -> Vec<Finding> {
        rules::run_all(self)
    }
}

/// Reads the `name = "..."` of a crate manifest without a TOML parser
/// (the analyzer is dependency-free; manifests in this tree are plain).
fn crate_name(manifest: &Path) -> io::Result<String> {
    let text = fs::read_to_string(manifest)?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                if let Some(name) = value.trim().strip_prefix('"').and_then(|v| v.split('"').next())
                {
                    return Ok(name.to_string());
                }
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("no `name = \"...\"` in {}", manifest.display()),
    ))
}

fn collect_rs(dir: &Path, root: &Path, krate: &str, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, krate, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            out.push(SourceFile::parse(krate, &rel, &text));
        }
    }
    Ok(())
}

/// Ascends from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
