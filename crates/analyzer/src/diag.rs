//! Findings and their rendering (rustc-style text and machine-readable
//! JSON).

use std::fmt;

/// Severity of a finding. `Deny` findings fail the run (non-zero exit);
/// `Warn` findings are advisory unless `--deny-warnings` is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    Deny,
    Warn,
}

/// One diagnostic, anchored to a workspace-relative `file:line`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule id (`A1/default_forwarding`, ...); also the name an
    /// `analyzer: allow(...)` annotation uses (the part after the `/`).
    pub rule: &'static str,
    pub level: Level,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.level {
            Level::Deny => "error",
            Level::Warn => "warning",
        };
        writeln!(f, "{kind}[{}]: {}", self.rule, self.message)?;
        write!(f, "  --> {}:{}", self.file, self.line)
    }
}

/// Escapes a string for inclusion in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON document (the machine-readable list the
/// deniability tier cross-checks; no serde — the analyzer is dependency
/// free).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let sep = if i + 1 == findings.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"level\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"message\": \"{}\"}}{sep}\n",
            json_escape(f.rule),
            match f.level {
                Level::Deny => "deny",
                Level::Warn => "warn",
            },
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rustc_style() {
        let f = Finding {
            rule: "A1/default_forwarding",
            level: Level::Deny,
            file: "crates/dm/src/linear.rs".into(),
            line: 67,
            message: "missing host_queue_enter".into(),
        };
        let s = f.to_string();
        assert!(s.starts_with("error[A1/default_forwarding]:"));
        assert!(s.contains("--> crates/dm/src/linear.rs:67"));
    }

    #[test]
    fn json_is_escaped_and_well_formed() {
        let f = Finding {
            rule: "A6/secret_taint",
            level: Level::Warn,
            file: "a\"b.rs".into(),
            line: 1,
            message: "path\\with \"quotes\"".into(),
        };
        let j = to_json(&[f]);
        assert!(j.contains(r#""file": "a\"b.rs""#));
        assert!(j.contains(r#"path\\with \"quotes\""#));
        assert!(to_json(&[]).contains("\"findings\": [\n  ]"));
    }
}
