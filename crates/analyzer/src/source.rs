//! The coarse per-file model the rule passes walk.
//!
//! One [`SourceFile`] holds the token stream plus everything the rules
//! need resolved up front:
//!
//! * **Test spans** — token ranges gated by `#[cfg(test)]`-style
//!   attributes (any `cfg` predicate mentioning `test`) or `#[test]`.
//!   Production-only rules skip these.
//! * **Hook spans** — the subset gated on the `test-hooks` feature
//!   (`#[cfg(any(test, feature = "test-hooks"))]`); rule A4 treats names
//!   declared here as quarantined.
//! * **Items** — `fn` bodies (for body-local scans like lock ordering)
//!   and `impl Trait for Type` blocks with their method names (for the
//!   wrapper-forwarding audit).
//! * **Annotations** — `// analyzer: allow(rule, reason = "...")`
//!   escapes, resolved to the code line they cover.
//!
//! The model is deliberately *approximate*: it tracks brace/paren/bracket
//! nesting exactly but does not build an AST. Every approximation errs
//! toward a rule firing (deny-by-default), never toward one going silent;
//! false positives are handled with an annotation carrying a reason.

use crate::lexer::{lex, Comment, TokKind, Token};
use std::collections::BTreeSet;

/// A half-open token-index range `[start, end)`.
pub type Span = (usize, usize);

/// A `fn` item: its name, the line of the `fn` keyword, and the token
/// span of its body (`None` for bodiless trait-method declarations).
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    pub line: u32,
    pub body: Option<Span>,
}

/// An `impl` block: `impl [Trait for] Type { ... }`.
#[derive(Debug)]
pub struct ImplItem {
    /// The trait's final path segment (`BlockDevice` for
    /// `impl<T> blockdev::BlockDevice for Arc<T>`); `None` for inherent
    /// impls.
    pub trait_name: Option<String>,
    pub line: u32,
    pub body: Span,
    /// Names of `fn`s defined directly in the impl body.
    pub methods: Vec<String>,
}

/// One `// analyzer: allow(rule, reason = "...")` escape.
#[derive(Debug)]
pub struct Annotation {
    pub rule: String,
    pub has_reason: bool,
    /// Line of the comment itself.
    pub line: u32,
    /// The code line the annotation covers (its own line when trailing,
    /// else the next line carrying a non-attribute token).
    pub target_line: u32,
}

/// A comment that contained `analyzer:` but did not parse as a valid
/// annotation — surfaced as a deny finding so a typo'd escape can never
/// silently grant itself.
#[derive(Debug)]
pub struct BadAnnotation {
    pub line: u32,
    pub why: String,
}

/// One parsed source file of the workspace.
#[derive(Debug)]
pub struct SourceFile {
    pub crate_name: String,
    /// Workspace-relative path, e.g. `crates/blockdev/src/memdisk.rs`.
    pub rel_path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub test_spans: Vec<Span>,
    pub hook_spans: Vec<Span>,
    pub fns: Vec<FnItem>,
    pub impls: Vec<ImplItem>,
    pub annotations: Vec<Annotation>,
    pub bad_annotations: Vec<BadAnnotation>,
    /// Lines holding at least one token outside attribute syntax.
    pub code_lines: BTreeSet<u32>,
    /// Rendered `#![...]` inner attributes (idents and punctuation only).
    pub inner_attrs: Vec<String>,
    pub has_unsafe: bool,
}

impl SourceFile {
    pub fn parse(crate_name: &str, rel_path: &str, text: &str) -> SourceFile {
        let lexed = lex(text);
        let mut f = SourceFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_spans: Vec::new(),
            hook_spans: Vec::new(),
            fns: Vec::new(),
            impls: Vec::new(),
            annotations: Vec::new(),
            bad_annotations: Vec::new(),
            code_lines: BTreeSet::new(),
            inner_attrs: Vec::new(),
            has_unsafe: false,
        };
        let attr_spans = f.scan_attributes();
        f.compute_code_lines(&attr_spans);
        f.scan_items();
        f.scan_annotations();
        f.has_unsafe = f.tokens.iter().any(|t| t.kind == TokKind::Ident("unsafe".into()));
        f
    }

    /// The file name (`memdisk.rs`) without its directory.
    pub fn file_name(&self) -> &str {
        self.rel_path.rsplit('/').next().unwrap_or(&self.rel_path)
    }

    pub fn ident_at(&self, idx: usize) -> Option<&str> {
        match self.tokens.get(idx).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => Some(s),
            _ => None,
        }
    }

    pub fn punct_at(&self, idx: usize, c: char) -> bool {
        matches!(self.tokens.get(idx).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
    }

    pub fn line_of(&self, idx: usize) -> u32 {
        self.tokens.get(idx).map_or(0, |t| t.line)
    }

    pub fn in_test_span(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    pub fn in_hook_span(&self, idx: usize) -> bool {
        self.hook_spans.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// Whether an `analyzer: allow(rule, ...)` annotation covers `line`.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.annotations.iter().any(|a| a.rule == rule && a.has_reason && a.target_line == line)
    }

    /// Attribute pass: records inner attributes, classifies `cfg` gates
    /// into test/hook spans, and returns every attribute's token span so
    /// attribute-only lines can be told apart from code lines.
    fn scan_attributes(&mut self) -> Vec<Span> {
        let mut attr_spans = Vec::new();
        let mut i = 0;
        while i < self.tokens.len() {
            if !self.punct_at(i, '#') {
                i += 1;
                continue;
            }
            let inner = self.punct_at(i + 1, '!');
            let open = if inner { i + 2 } else { i + 1 };
            if !self.punct_at(open, '[') {
                i += 1;
                continue;
            }
            let close = match self.match_delim(open, '[', ']') {
                Some(c) => c,
                None => break,
            };
            attr_spans.push((i, close + 1));
            let content = &self.tokens[open + 1..close];
            if inner {
                self.inner_attrs.push(render(content));
            } else {
                let first = content.first().map(|t| &t.kind);
                let is_test_attr = first == Some(&TokKind::Ident("test".into()));
                let is_cfg = first == Some(&TokKind::Ident("cfg".into()));
                let mentions_test =
                    is_cfg && content.iter().any(|t| t.kind == TokKind::Ident("test".into()));
                let mentions_hooks = is_cfg
                    && content
                        .iter()
                        .any(|t| matches!(&t.kind, TokKind::Str(s) if s.contains("test-hooks")));
                if is_test_attr || mentions_test || mentions_hooks {
                    let span = (close + 1, self.item_end(close + 1));
                    if mentions_hooks {
                        self.hook_spans.push(span);
                    }
                    self.test_spans.push(span);
                }
            }
            i = close + 1;
        }
        attr_spans
    }

    /// End (exclusive token index) of the item/statement/field starting at
    /// `from`: skips stacked attributes, then runs to the first `,` or `;`
    /// at depth 0 or past the matching close of the first depth-0 `{`.
    fn item_end(&self, from: usize) -> usize {
        let mut i = from;
        // Skip any further stacked attributes.
        while self.punct_at(i, '#') && self.punct_at(i + 1, '[') {
            match self.match_delim(i + 1, '[', ']') {
                Some(c) => i = c + 1,
                None => return self.tokens.len(),
            }
        }
        let (mut paren, mut bracket) = (0i32, 0i32);
        while i < self.tokens.len() {
            match self.tokens[i].kind {
                TokKind::Punct('(') => paren += 1,
                TokKind::Punct(')') => paren -= 1,
                TokKind::Punct('[') => bracket += 1,
                TokKind::Punct(']') => bracket -= 1,
                TokKind::Punct('{') if paren == 0 && bracket == 0 => {
                    return self.match_delim(i, '{', '}').map_or(self.tokens.len(), |c| c + 1);
                }
                TokKind::Punct(',' | ';') if paren == 0 && bracket == 0 => return i + 1,
                _ => {}
            }
            i += 1;
        }
        self.tokens.len()
    }

    /// Matching close index for the `open_ch` at `open_idx`, tracking all
    /// three bracket kinds so strings/comments (already stripped by the
    /// lexer) cannot desynchronize it.
    pub fn match_delim(&self, open_idx: usize, open_ch: char, close_ch: char) -> Option<usize> {
        if !self.punct_at(open_idx, open_ch) {
            return None;
        }
        let mut depth = 0i32;
        for (k, t) in self.tokens.iter().enumerate().skip(open_idx) {
            match t.kind {
                TokKind::Punct(c) if c == open_ch => depth += 1,
                TokKind::Punct(c) if c == close_ch => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
        None
    }

    fn compute_code_lines(&mut self, attr_spans: &[Span]) {
        let mut in_attr = vec![false; self.tokens.len()];
        for &(s, e) in attr_spans {
            for flag in in_attr.iter_mut().take(e.min(self.tokens.len())).skip(s) {
                *flag = true;
            }
        }
        for (k, t) in self.tokens.iter().enumerate() {
            if !in_attr[k] {
                self.code_lines.insert(t.line);
            }
        }
    }

    fn scan_items(&mut self) {
        let mut fns = Vec::new();
        let mut impls = Vec::new();
        let mut i = 0;
        while i < self.tokens.len() {
            match self.ident_at(i) {
                Some("fn") => {
                    if let Some((item, next)) = self.parse_fn(i) {
                        fns.push(item);
                        i = next;
                        continue;
                    }
                }
                Some("impl") => {
                    if let Some((item, next)) = self.parse_impl(i) {
                        impls.push(item);
                        i = next;
                        continue;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.fns = fns;
        self.impls = impls;
    }

    /// Parses from a `fn` keyword; returns the item and the index to
    /// resume scanning at (start of the body, so nested fns are found).
    fn parse_fn(&self, fn_idx: usize) -> Option<(FnItem, usize)> {
        let name = self.ident_at(fn_idx + 1)?.to_string();
        let line = self.line_of(fn_idx);
        let (mut paren, mut bracket) = (0i32, 0i32);
        let mut i = fn_idx + 2;
        while i < self.tokens.len() {
            match self.tokens[i].kind {
                TokKind::Punct('(') => paren += 1,
                TokKind::Punct(')') => paren -= 1,
                TokKind::Punct('[') => bracket += 1,
                TokKind::Punct(']') => bracket -= 1,
                TokKind::Punct(';') if paren == 0 && bracket == 0 => {
                    return Some((FnItem { name, line, body: None }, i + 1));
                }
                TokKind::Punct('{') if paren == 0 && bracket == 0 => {
                    let close = self.match_delim(i, '{', '}')?;
                    return Some((FnItem { name, line, body: Some((i, close + 1)) }, i + 1));
                }
                _ => {}
            }
            i += 1;
        }
        None
    }

    fn parse_impl(&self, impl_idx: usize) -> Option<(ImplItem, usize)> {
        let line = self.line_of(impl_idx);
        let mut i = impl_idx + 1;
        // Skip the generic parameter list, if any.
        if self.punct_at(i, '<') {
            let mut depth = 0i32;
            while i < self.tokens.len() {
                match self.tokens[i].kind {
                    TokKind::Punct('<') => depth += 1,
                    TokKind::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        // Walk to the body `{`, remembering the last depth-0 ident seen
        // before a `for` (the trait's final path segment).
        let mut angle = 0i32;
        let (mut paren, mut bracket) = (0i32, 0i32);
        let mut last_ident: Option<String> = None;
        let mut trait_name: Option<String> = None;
        while i < self.tokens.len() {
            match &self.tokens[i].kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle = (angle - 1).max(0),
                TokKind::Punct('(') => paren += 1,
                TokKind::Punct(')') => paren -= 1,
                TokKind::Punct('[') => bracket += 1,
                TokKind::Punct(']') => bracket -= 1,
                TokKind::Ident(s) if angle == 0 && paren == 0 && bracket == 0 => {
                    if s == "for" {
                        trait_name = last_ident.take();
                    } else if s == "where" {
                        // Self type ends; bounds may mention idents.
                    } else {
                        last_ident = Some(s.clone());
                    }
                }
                TokKind::Punct('{') if paren == 0 && bracket == 0 => {
                    let close = self.match_delim(i, '{', '}')?;
                    let methods = self.impl_methods((i, close + 1));
                    return Some((
                        ImplItem { trait_name, line, body: (i, close + 1), methods },
                        i + 1,
                    ));
                }
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Names of `fn`s at nesting depth 1 of an impl body.
    fn impl_methods(&self, body: Span) -> Vec<String> {
        let mut out = Vec::new();
        let mut depth = 0i32;
        for k in body.0..body.1 {
            match self.tokens[k].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => depth -= 1,
                TokKind::Ident(ref s) if s == "fn" && depth == 1 => {
                    if let Some(name) = self.ident_at(k + 1) {
                        out.push(name.to_string());
                    }
                }
                _ => {}
            }
        }
        out
    }

    fn scan_annotations(&mut self) {
        let mut annotations = Vec::new();
        let mut bad = Vec::new();
        for c in &self.comments {
            // Annotations are plain comments whose content *starts* with
            // `analyzer:` — doc comments and prose that merely mention
            // the grammar are not escapes.
            if c.text.starts_with("///")
                || c.text.starts_with("//!")
                || c.text.starts_with("/**")
                || c.text.starts_with("/*!")
            {
                continue;
            }
            let content = c.text.trim_start_matches(['/', '*']).trim_start();
            let Some(rest) = content.strip_prefix("analyzer:") else { continue };
            let target_line = if c.trailing {
                c.start_line
            } else {
                // The next line carrying a non-attribute token; attribute
                // stacks and further comments between the annotation and
                // its item are skipped.
                self.code_lines.range(c.end_line + 1..).next().copied().unwrap_or(0)
            };
            match parse_allow(rest) {
                Ok((rule, has_reason)) => {
                    if !has_reason {
                        bad.push(BadAnnotation {
                            line: c.start_line,
                            why: format!(
                                "allow({rule}) without a reason — every escape must say why \
                                 (`analyzer: allow({rule}, reason = \"...\")`)"
                            ),
                        });
                    }
                    annotations.push(Annotation {
                        rule,
                        has_reason,
                        line: c.start_line,
                        target_line,
                    });
                }
                Err(why) => bad.push(BadAnnotation { line: c.start_line, why }),
            }
        }
        self.annotations = annotations;
        self.bad_annotations = bad;
    }
}

/// Parses the tail of an annotation comment after `analyzer:`. Accepts
/// `allow(rule)` (reported as reasonless) and
/// `allow(rule, reason = "non-empty")`.
fn parse_allow(rest: &str) -> Result<(String, bool), String> {
    let rest = rest.trim_start();
    let body = rest
        .strip_prefix("allow")
        .and_then(|r| r.trim_start().strip_prefix('('))
        .ok_or_else(|| "expected `allow(rule, reason = \"...\")` after `analyzer:`".to_string())?;
    let close = body
        .rfind(')')
        .ok_or_else(|| "unterminated `analyzer: allow(...)` annotation".to_string())?;
    let inside = &body[..close];
    let (rule, tail) = match inside.split_once(',') {
        Some((r, t)) => (r.trim(), Some(t.trim())),
        None => (inside.trim(), None),
    };
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("`{rule}` is not a rule name"));
    }
    let has_reason = match tail {
        None => false,
        Some(t) => {
            let after = t.strip_prefix("reason").map(str::trim_start);
            let eq = after.and_then(|a| a.strip_prefix('=')).map(str::trim_start);
            match eq.and_then(|a| a.strip_prefix('"')).and_then(|a| a.rsplit_once('"')) {
                Some((text, _)) if !text.trim().is_empty() => true,
                _ => {
                    return Err("annotation tail must be `reason = \"non-empty text\"`".to_string())
                }
            }
        }
    };
    Ok((rule.to_string(), has_reason))
}

fn render(tokens: &[Token]) -> String {
    let mut s = String::new();
    for t in tokens {
        match &t.kind {
            TokKind::Ident(i) => {
                if !s.is_empty() && !s.ends_with(['(', '[', ':']) {
                    s.push(' ');
                }
                s.push_str(i);
            }
            TokKind::Punct(c) => s.push(*c),
            TokKind::Str(v) => {
                s.push('"');
                s.push_str(v);
                s.push('"');
            }
            TokKind::Num => s.push('N'),
            TokKind::Lifetime => s.push('\''),
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("test-crate", "src/lib.rs", src)
    }

    #[test]
    fn cfg_test_mod_spans_cover_their_items() {
        let src = "fn prod() { work(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n";
        let f = parse(src);
        let unwrap_idx = f
            .tokens
            .iter()
            .position(|t| t.kind == TokKind::Ident("unwrap".into()))
            .expect("unwrap token");
        assert!(f.in_test_span(unwrap_idx));
        let work_idx =
            f.tokens.iter().position(|t| t.kind == TokKind::Ident("work".into())).unwrap();
        assert!(!f.in_test_span(work_idx));
    }

    #[test]
    fn hook_spans_cover_field_decls_inits_and_fns() {
        let src = r#"
struct S {
    #[cfg(any(test, feature = "test-hooks"))]
    depth_floor: usize,
    real: u32,
}
impl S {
    #[cfg(any(test, feature = "test-hooks"))]
    pub fn set_floor(&self) { self.depth_floor = 1; }
    fn observed(&self) -> usize {
        #[cfg(any(test, feature = "test-hooks"))]
        let x = self.depth_floor;
        self.real as usize
    }
}
"#;
        let f = parse(src);
        for (k, t) in f.tokens.iter().enumerate() {
            if t.kind == TokKind::Ident("depth_floor".into()) {
                assert!(f.in_hook_span(k), "depth_floor at line {} must be hook-gated", t.line);
            }
            if t.kind == TokKind::Ident("real".into()) {
                assert!(!f.in_hook_span(k));
            }
        }
    }

    #[test]
    fn impls_resolve_trait_names_and_methods() {
        let src = "
impl<T: BlockDevice + ?Sized> BlockDevice for Arc<T> {
    fn read_blocks(&self) {}
    fn flush(&self) { if x { y(); } }
}
impl fmt::Display for Foo {
    fn fmt(&self) {}
}
impl Foo {
    fn inherent(&self) {}
}
impl From<Bar> for Foo {
    fn from(b: Bar) -> Foo { Foo }
}
";
        let f = parse(src);
        assert_eq!(f.impls.len(), 4);
        assert_eq!(f.impls[0].trait_name.as_deref(), Some("BlockDevice"));
        assert_eq!(f.impls[0].methods, vec!["read_blocks", "flush"]);
        assert_eq!(f.impls[1].trait_name.as_deref(), Some("Display"));
        assert_eq!(f.impls[2].trait_name, None);
        assert_eq!(f.impls[3].trait_name.as_deref(), Some("From"));
    }

    #[test]
    fn annotations_cover_their_lines() {
        let src = "\
// analyzer: allow(panic_freedom, reason = \"bounded by construction\")
let x = v.pop().unwrap();
let y = w.pop().unwrap(); // analyzer: allow(panic_freedom, reason = \"ditto\")
let z = q.pop().unwrap();
";
        let f = parse(src);
        assert!(f.allowed("panic_freedom", 2));
        assert!(f.allowed("panic_freedom", 3));
        assert!(!f.allowed("panic_freedom", 4));
        assert!(!f.allowed("lock_order", 2));
    }

    #[test]
    fn annotations_skip_attribute_stacks() {
        let src = "\
// analyzer: allow(safety_comment, reason = \"covered by module docs\")
#[cfg(target_arch = \"x86_64\")]
#[target_feature(enable = \"aes\")]
unsafe fn fast(&self) {}
";
        let f = parse(src);
        assert!(f.allowed("safety_comment", 4));
    }

    #[test]
    fn reasonless_or_malformed_annotations_are_reported() {
        let f = parse("// analyzer: allow(panic_freedom)\nlet x = v.pop().unwrap();\n");
        assert_eq!(f.bad_annotations.len(), 1);
        assert!(!f.allowed("panic_freedom", 2), "reasonless escape grants nothing");
        let f = parse("// analyzer: allw(panic_freedom, reason = \"x\")\nfoo();\n");
        assert_eq!(f.bad_annotations.len(), 1);
        let f = parse("// analyzer: allow(panic_freedom, reason = \"\")\nfoo();\n");
        assert_eq!(f.bad_annotations.len(), 1);
    }

    #[test]
    fn inner_attrs_render() {
        let f = parse("#![forbid(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\nfn f() {}\n");
        assert!(f.inner_attrs.iter().any(|a| a.contains("forbid") && a.contains("unsafe_code")));
        assert!(f.inner_attrs.iter().any(|a| a.contains("unsafe_op_in_unsafe_fn")));
    }
}
