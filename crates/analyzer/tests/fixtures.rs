//! Fixture self-tests: every rule demonstrably fires on a known-bad
//! snippet and stays quiet on the fixed (or properly annotated) twin.
//! Two pins keep the analyzer honest against the real tree: the
//! workspace itself must be clean, and mutating a real wrapper must
//! re-light A1 — so the rules can never silently stop matching.

use mobiceal_analyzer::rules::forwarding;
use mobiceal_analyzer::{analyze_memory, Level, Workspace};
use std::path::Path;

fn denies<'a>(
    findings: &'a [mobiceal_analyzer::Finding],
    rule: &'a str,
) -> Vec<&'a mobiceal_analyzer::Finding> {
    findings.iter().filter(|f| f.rule == rule && f.level == Level::Deny).collect()
}

fn warns<'a>(
    findings: &'a [mobiceal_analyzer::Finding],
    rule: &'a str,
) -> Vec<&'a mobiceal_analyzer::Finding> {
    findings.iter().filter(|f| f.rule == rule && f.level == Level::Warn).collect()
}

// ---------------------------------------------------------------- A1

const A1_BAD: &str = r#"
impl BlockDevice for Passthrough {
    fn num_blocks(&self) -> u64 { self.inner.num_blocks() }
    fn block_size(&self) -> usize { self.inner.block_size() }
    fn read_block(&self, i: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.inner.read_block(i)
    }
    fn write_block(&self, i: BlockIndex, d: &[u8]) -> Result<(), BlockDeviceError> {
        self.inner.write_block(i, d)
    }
}
"#;

#[test]
fn a1_fires_on_wrapper_missing_forwards() {
    let findings = analyze_memory(&[("mobiceal-dm", "crates/dm/src/wrap.rs", A1_BAD)]);
    let hits = denies(&findings, "A1/default_forwarding");
    assert_eq!(hits.len(), 1, "{findings:?}");
    for m in ["read_blocks", "write_blocks", "flush", "host_queue_enter", "host_queue_leave"] {
        assert!(hits[0].message.contains(m), "missing `{m}` in: {}", hits[0].message);
    }
}

#[test]
fn a1_passes_once_all_five_are_forwarded() {
    let fixed = r#"
impl BlockDevice for Passthrough {
    fn num_blocks(&self) -> u64 { self.inner.num_blocks() }
    fn block_size(&self) -> usize { self.inner.block_size() }
    fn read_block(&self, i: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.inner.read_block(i)
    }
    fn write_block(&self, i: BlockIndex, d: &[u8]) -> Result<(), BlockDeviceError> {
        self.inner.write_block(i, d)
    }
    fn read_blocks(&self, ix: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        self.inner.read_blocks(ix)
    }
    fn write_blocks(&self, w: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        self.inner.write_blocks(w)
    }
    fn flush(&self) -> Result<(), BlockDeviceError> { self.inner.flush() }
    fn host_queue_enter(&self) { self.inner.host_queue_enter() }
    fn host_queue_leave(&self) { self.inner.host_queue_leave() }
}
"#;
    let findings = analyze_memory(&[("mobiceal-dm", "crates/dm/src/wrap.rs", fixed)]);
    assert!(denies(&findings, "A1/default_forwarding").is_empty(), "{findings:?}");
}

#[test]
fn a1_annotation_with_reason_is_an_escape() {
    let annotated = format!(
        "// analyzer: allow(default_forwarding, reason = \"per-block defaults wanted\")\n{}",
        A1_BAD.trim_start()
    );
    let findings = analyze_memory(&[("mobiceal-dm", "crates/dm/src/wrap.rs", &annotated)]);
    assert!(denies(&findings, "A1/default_forwarding").is_empty(), "{findings:?}");
    // ... but a reasonless annotation is itself a deny finding.
    let reasonless = format!("// analyzer: allow(default_forwarding)\n{}", A1_BAD.trim_start());
    let findings = analyze_memory(&[("mobiceal-dm", "crates/dm/src/wrap.rs", &reasonless)]);
    assert!(!denies(&findings, "A0/annotation").is_empty(), "{findings:?}");
}

#[test]
fn a1_ignores_test_only_devices() {
    let gated = format!("#[cfg(test)]\nmod tests {{\n{}\n}}\n", A1_BAD);
    let findings = analyze_memory(&[("mobiceal-dm", "crates/dm/src/wrap.rs", &gated)]);
    assert!(denies(&findings, "A1/default_forwarding").is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- A2

#[test]
fn a2_fires_on_directory_after_allocator() {
    let bad = r#"
fn grab(&self) {
    let a = self.alloc.lock();
    let d = self.directory.read();
}
"#;
    let findings = analyze_memory(&[("mobiceal-thinp", "crates/thinp/src/pool.rs", bad)]);
    assert_eq!(denies(&findings, "A2/lock_order").len(), 1, "{findings:?}");
}

#[test]
fn a2_passes_in_documented_order() {
    let good = r#"
fn grab(&self) {
    let d = self.directory.read();
    let v = handle.lock();
    let a = self.alloc.lock();
}
"#;
    let findings = analyze_memory(&[("mobiceal-thinp", "crates/thinp/src/pool.rs", good)]);
    assert!(denies(&findings, "A2/lock_order").is_empty(), "{findings:?}");
}

#[test]
fn a2_fires_on_two_indexed_shard_locks() {
    let bad = r#"
fn swap(&self, a: usize, b: usize) {
    let x = self.shards[a].lock();
    let y = self.shards[b].lock();
}
"#;
    let findings = analyze_memory(&[("mobiceal-blockdev", "crates/blockdev/src/memdisk.rs", bad)]);
    let hits = denies(&findings, "A2/lock_order");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("single-shard locks"), "{}", hits[0].message);
}

#[test]
fn a2_fires_on_indexed_shard_after_sweep() {
    let bad = r#"
fn sweep_then_peek(&self) {
    for s in self.shards.iter() {
        let g = s.lock();
    }
    let g = self.shards[0].lock();
}
"#;
    let findings = analyze_memory(&[("mobiceal-blockdev", "crates/blockdev/src/memdisk.rs", bad)]);
    let hits = denies(&findings, "A2/lock_order");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("self-deadlock"), "{}", hits[0].message);
}

#[test]
fn a2_fires_on_command_lock_reacquisition() {
    let bad = r#"
fn plan(&self) {
    let c = self.cmd.lock();
    drop(c);
    let c = self.cmd.lock();
}
"#;
    let findings = analyze_memory(&[("mobiceal-blockdev", "crates/blockdev/src/memdisk.rs", bad)]);
    let hits = denies(&findings, "A2/lock_order");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("re-acquires the command lock"), "{}", hits[0].message);
}

#[test]
fn a2_allows_one_indexed_shard_and_one_command_lock() {
    let good = r#"
fn read_one(&self, i: usize) {
    let c = self.cmd.lock();
    let g = self.shards[i].lock();
}
"#;
    let findings = analyze_memory(&[("mobiceal-blockdev", "crates/blockdev/src/memdisk.rs", good)]);
    assert!(denies(&findings, "A2/lock_order").is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- A3

#[test]
fn a3_fires_on_unwrap_in_hot_path_module() {
    let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let findings = analyze_memory(&[("mobiceal-thinp", "crates/thinp/src/pool.rs", bad)]);
    assert_eq!(denies(&findings, "A3/panic_freedom").len(), 1, "{findings:?}");
}

#[test]
fn a3_fires_on_panic_macro_but_not_in_tests() {
    let bad = "fn f() { panic!(\"boom\") }\n";
    let findings = analyze_memory(&[("mobiceal-blockdev", "crates/blockdev/src/engine.rs", bad)]);
    assert_eq!(denies(&findings, "A3/panic_freedom").len(), 1, "{findings:?}");
    let in_test = "#[cfg(test)]\nmod tests {\n    fn f() { panic!(\"boom\") }\n}\n";
    let findings =
        analyze_memory(&[("mobiceal-blockdev", "crates/blockdev/src/engine.rs", in_test)]);
    assert!(denies(&findings, "A3/panic_freedom").is_empty(), "{findings:?}");
}

#[test]
fn a3_ignores_unwrap_or_and_non_designated_modules() {
    let fine = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
    let findings = analyze_memory(&[("mobiceal-thinp", "crates/thinp/src/pool.rs", fine)]);
    assert!(denies(&findings, "A3/panic_freedom").is_empty(), "{findings:?}");
    let elsewhere = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let findings =
        analyze_memory(&[("mobiceal-workloads", "crates/workloads/src/dd.rs", elsewhere)]);
    assert!(denies(&findings, "A3/panic_freedom").is_empty(), "{findings:?}");
}

#[test]
fn a3_annotated_unreachable_passes() {
    let annotated = "fn f(x: Option<u8>) -> u8 {\n    \
        // analyzer: allow(panic_freedom, reason = \"x is Some by construction\")\n    \
        x.unwrap()\n}\n";
    let findings = analyze_memory(&[("mobiceal-thinp", "crates/thinp/src/pool.rs", annotated)]);
    assert!(denies(&findings, "A3/panic_freedom").is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- A4

const A4_HOOK_DECL: &str = r#"
impl MemDisk {
    #[cfg(any(test, feature = "test-hooks"))]
    pub fn set_depth_floor(&self, floor: usize) { let _ = floor; }
}
"#;

#[test]
fn a4_fires_on_ungated_hook_reference() {
    let caller = "fn tune(d: &MemDisk) { d.set_depth_floor(4); }\n";
    let findings = analyze_memory(&[
        ("mobiceal-blockdev", "crates/blockdev/src/memdisk.rs", A4_HOOK_DECL),
        ("mobiceal-core", "crates/core/src/tuner.rs", caller),
    ]);
    let hits = denies(&findings, "A4/test_hook");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].file.ends_with("tuner.rs"), "{}", hits[0].file);
}

#[test]
fn a4_passes_when_reference_is_gated() {
    let gated_caller = r#"
#[cfg(any(test, feature = "test-hooks"))]
fn tune(d: &MemDisk) { d.set_depth_floor(4); }
"#;
    let findings = analyze_memory(&[
        ("mobiceal-blockdev", "crates/blockdev/src/memdisk.rs", A4_HOOK_DECL),
        ("mobiceal-core", "crates/core/src/tuner.rs", gated_caller),
    ]);
    assert!(denies(&findings, "A4/test_hook").is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- A5

#[test]
fn a5_fires_on_unjustified_unsafe_block() {
    let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    let findings = analyze_memory(&[("mobiceal-crypto", "crates/crypto/src/aes.rs", bad)]);
    assert_eq!(denies(&findings, "A5/safety_comment").len(), 1, "{findings:?}");
}

#[test]
fn a5_passes_with_adjacent_safety_comment() {
    let good = "fn f(p: *const u8) -> u8 {\n    \
        // SAFETY: caller hands a valid, aligned, initialized pointer.\n    \
        unsafe { *p }\n}\n";
    let findings = analyze_memory(&[("mobiceal-crypto", "crates/crypto/src/aes.rs", good)]);
    assert!(denies(&findings, "A5/safety_comment").is_empty(), "{findings:?}");
}

#[test]
fn a5_crate_level_attributes_are_required() {
    // An unsafe-free crate must forbid unsafe_code...
    let findings = analyze_memory(&[("clean", "crates/clean/src/lib.rs", "pub fn f() {}\n")]);
    let hits = denies(&findings, "A5/safety_comment");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("forbid"), "{}", hits[0].message);
    // ...and declaring it passes.
    let findings = analyze_memory(&[(
        "clean",
        "crates/clean/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    )]);
    assert!(denies(&findings, "A5/safety_comment").is_empty(), "{findings:?}");
    // An unsafe-using crate must deny unsafe_op_in_unsafe_fn.
    let findings = analyze_memory(&[(
        "hot",
        "crates/hot/src/lib.rs",
        "fn f(p: *const u8) -> u8 {\n    // SAFETY: valid by contract.\n    unsafe { *p }\n}\n",
    )]);
    let hits = denies(&findings, "A5/safety_comment");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("unsafe_op_in_unsafe_fn"), "{}", hits[0].message);
}

// ---------------------------------------------------------------- A6

#[test]
fn a6_warns_on_secret_named_value_in_charged_sink() {
    let bad = "fn f(&self) { let t = self.cost.cost(key_blocks, 1); self.clock.advance(t); }\n";
    let findings = analyze_memory(&[("mobiceal", "crates/core/src/pde_volume.rs", bad)]);
    let hits = warns(&findings, "A6/secret_taint");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("key_blocks"), "{}", hits[0].message);
    // Warn-level: the analyzer still exits clean unless --deny-warnings.
    assert!(findings.iter().all(|f| f.level != Level::Deny), "{findings:?}");
}

#[test]
fn a6_is_quiet_on_shape_only_arguments_and_annotated_sites() {
    let fine = "fn f(&self) { self.clock.advance(self.cost.cost(burst_len, 1)); }\n";
    let findings = analyze_memory(&[("mobiceal", "crates/core/src/pde_volume.rs", fine)]);
    assert!(warns(&findings, "A6/secret_taint").is_empty(), "{findings:?}");
    let reviewed = "fn f(&self) {\n    \
        // analyzer: allow(secret_taint, reason = \"count of key slots, not key material\")\n    \
        self.clock.advance(self.cost.cost(key_blocks, 1));\n}\n";
    let findings = analyze_memory(&[("mobiceal", "crates/core/src/pde_volume.rs", reviewed)]);
    assert!(warns(&findings, "A6/secret_taint").is_empty(), "{findings:?}");
}

// ------------------------------------------------------- real tree pins

fn real_workspace() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    Workspace::from_dir(&root).expect("workspace sources readable")
}

#[test]
fn workspace_is_clean() {
    let ws = real_workspace();
    let denies: Vec<_> = ws.analyze().into_iter().filter(|f| f.level == Level::Deny).collect();
    assert!(denies.is_empty(), "the tree must stay analyzer-clean:\n{denies:#?}");
}

#[test]
fn workspace_audits_all_blockdevice_impls() {
    // Pinned so the impl matcher can never silently stop seeing wrappers.
    assert_eq!(forwarding::audited_sites(&real_workspace()), 13);
}

#[test]
fn removing_a_host_queue_forward_from_a_real_wrapper_fires_a1() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../dm/src/linear.rs");
    let text = std::fs::read_to_string(&path).expect("linear.rs readable");
    let start = text.find("fn host_queue_enter").expect("linear.rs forwards host_queue_enter");
    let open = start + text[start..].find('{').expect("method has a body");
    let mut depth = 0usize;
    let mut end = open;
    for (off, ch) in text[open..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = open + off + 1;
                    break;
                }
            }
            _ => {}
        }
    }
    assert!(end > open, "matched the method body");
    let mutated = format!("{}{}", &text[..start], &text[end..]);
    let findings = analyze_memory(&[("mobiceal-dm", "crates/dm/src/linear.rs", &mutated)]);
    let hits = denies(&findings, "A1/default_forwarding");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("host_queue_enter"), "{}", hits[0].message);
    // The unmutated file is clean — the finding is the mutation's doing.
    let findings = analyze_memory(&[("mobiceal-dm", "crates/dm/src/linear.rs", &text)]);
    assert!(denies(&findings, "A1/default_forwarding").is_empty(), "{findings:?}");
}
