//! Property tests pinning batched-parallel `DmCrypt` to the sequential
//! path: same media bytes, same plaintext on read-back, same virtual-clock
//! charges. Parallelism may only change wall-clock time.

// Test binary: aborting on an unexpected error is the point.
#![allow(clippy::unwrap_used)]

use mobiceal_blockdev::{BlockDevice, MemDisk};
use mobiceal_dm::DmCrypt;
use mobiceal_sim::{CpuCostModel, SimClock};
use proptest::prelude::*;
use std::sync::Arc;

const BLOCKS: u64 = 48;
const BS: usize = 512;

/// Builds one essiv and one xts target over a fresh disk, with timing.
fn stacks(parallel: bool) -> Vec<(Arc<MemDisk>, SimClock, DmCrypt)> {
    [true, false]
        .into_iter()
        .map(|essiv| {
            let clock = SimClock::new();
            let disk = Arc::new(MemDisk::new(BLOCKS, BS, clock.clone()));
            let crypt = if essiv {
                DmCrypt::new_essiv(disk.clone(), &[0x42; 32])
            } else {
                DmCrypt::new_xts(disk.clone(), &[0x42; 64])
            };
            let crypt = crypt.with_timing(clock.clone(), CpuCostModel::nexus4());
            // Force the parallel path for every batch depth (threshold 2 is
            // the floor), or pin it off entirely.
            let crypt = if parallel { crypt.with_parallelism(4, 2) } else { crypt.sequential() };
            (disk, clock, crypt)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Batched-parallel writes and reads must be indistinguishable from the
    /// sequential path on the backing medium, in read-back plaintext, and
    /// on the simulated clock.
    #[test]
    fn parallel_equals_sequential(
        batches in prop::collection::vec(
            prop::collection::vec((0u64..BLOCKS, any::<u8>()), 1..40),
            1..4,
        ),
    ) {
        for ((disk_p, clock_p, par), (disk_s, clock_s, seq)) in
            stacks(true).into_iter().zip(stacks(false))
        {
            for batch in &batches {
                let data: Vec<(u64, Vec<u8>)> = batch
                    .iter()
                    .map(|&(b, fill)| (b, (0..BS).map(|i| fill ^ (i % 251) as u8).collect()))
                    .collect();
                let writes: Vec<(u64, &[u8])> =
                    data.iter().map(|(b, d)| (*b, d.as_slice())).collect();
                par.write_blocks(&writes).unwrap();
                seq.write_blocks(&writes).unwrap();
                let indices: Vec<u64> = data.iter().map(|(b, _)| *b).collect();
                prop_assert_eq!(
                    par.read_blocks(&indices).unwrap(),
                    seq.read_blocks(&indices).unwrap(),
                    "read-back plaintext must not depend on sharding"
                );
            }
            prop_assert_eq!(
                disk_p.snapshot().as_bytes(),
                disk_s.snapshot().as_bytes(),
                "media must be bit-identical"
            );
            prop_assert_eq!(
                clock_p.now(),
                clock_s.now(),
                "virtual-clock charges must be identical"
            );
        }
    }
}
