//! Property tests pinning batched-parallel `DmCrypt` to the sequential
//! path: same media bytes, same plaintext on read-back, same virtual-clock
//! charges. Parallelism may only change wall-clock time.

// Test binary: aborting on an unexpected error is the point.
#![allow(clippy::unwrap_used)]

use mobiceal_blockdev::{BlockDevice, MemDisk};
use mobiceal_dm::DmCrypt;
use mobiceal_sim::{CpuCostModel, SimClock, SimDuration};
use proptest::prelude::*;
use std::sync::Arc;

const BLOCKS: u64 = 48;
const BS: usize = 512;

/// Builds one essiv and one xts target over a fresh disk, with timing.
fn stacks(parallel: bool) -> Vec<(Arc<MemDisk>, SimClock, DmCrypt)> {
    [true, false]
        .into_iter()
        .map(|essiv| {
            let clock = SimClock::new();
            let disk = Arc::new(MemDisk::new(BLOCKS, BS, clock.clone()));
            let crypt = if essiv {
                DmCrypt::new_essiv(disk.clone(), &[0x42; 32])
            } else {
                DmCrypt::new_xts(disk.clone(), &[0x42; 64])
            };
            let crypt = crypt.with_timing(clock.clone(), CpuCostModel::nexus4());
            // Force the parallel path for every batch depth (threshold 2 is
            // the floor), or pin it off entirely.
            let crypt = if parallel { crypt.with_parallelism(4, 2) } else { crypt.sequential() };
            (disk, clock, crypt)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Batched-parallel writes and reads must be indistinguishable from the
    /// sequential path on the backing medium, in read-back plaintext, and
    /// on the simulated clock.
    #[test]
    fn parallel_equals_sequential(
        batches in prop::collection::vec(
            prop::collection::vec((0u64..BLOCKS, any::<u8>()), 1..40),
            1..4,
        ),
    ) {
        for ((disk_p, clock_p, par), (disk_s, clock_s, seq)) in
            stacks(true).into_iter().zip(stacks(false))
        {
            for batch in &batches {
                let data: Vec<(u64, Vec<u8>)> = batch
                    .iter()
                    .map(|&(b, fill)| (b, (0..BS).map(|i| fill ^ (i % 251) as u8).collect()))
                    .collect();
                let writes: Vec<(u64, &[u8])> =
                    data.iter().map(|(b, d)| (*b, d.as_slice())).collect();
                par.write_blocks(&writes).unwrap();
                seq.write_blocks(&writes).unwrap();
                let indices: Vec<u64> = data.iter().map(|(b, _)| *b).collect();
                prop_assert_eq!(
                    par.read_blocks(&indices).unwrap(),
                    seq.read_blocks(&indices).unwrap(),
                    "read-back plaintext must not depend on sharding"
                );
            }
            prop_assert_eq!(
                disk_p.snapshot().as_bytes(),
                disk_s.snapshot().as_bytes(),
                "media must be bit-identical"
            );
            prop_assert_eq!(
                clock_p.now(),
                clock_s.now(),
                "virtual-clock charges must be identical"
            );
        }
    }

    /// Pins the three write paths against each other: the sector-batch
    /// entry points (thread-sharded and sequential) and the per-sector
    /// loop must land bit-identical ciphertext on the medium, and every
    /// path's crypto charge must be exactly the byte-count formula —
    /// `aes_cost(total)` once per batch, `aes_cost(block)` once per call
    /// on the loop (the documented batch amortization). The crypto charge
    /// is measured as the clock delta against a cipherless twin driving
    /// the identical device-op sequence, so this also pins that real
    /// crypto speed — wide lanes, precomputed tweak ladders — never leaks
    /// into the virtual numbers.
    #[test]
    fn batch_and_per_sector_paths_pin_ciphertext_and_crypto_charges(
        batch in prop::collection::vec((0u64..BLOCKS, any::<u8>()), 1..40),
    ) {
        let model = CpuCostModel::nexus4();
        for (((disk_b, clock_b, batched), (disk_s, _clock_s, seq)), (disk_1, clock_1, single)) in
            stacks(true).into_iter().zip(stacks(false)).zip(stacks(false))
        {
            let data: Vec<(u64, Vec<u8>)> = batch
                .iter()
                .map(|&(b, fill)| (b, (0..BS).map(|i| fill ^ (i % 251) as u8).collect()))
                .collect();
            let writes: Vec<(u64, &[u8])> =
                data.iter().map(|(b, d)| (*b, d.as_slice())).collect();

            // Cipherless twins issue the identical device-op sequences;
            // MemDisk charges depend only on (op, index, size), so the
            // clock difference below is exactly the crypto charge.
            let raw_clock_b = SimClock::new();
            let raw_b = MemDisk::new(BLOCKS, BS, raw_clock_b.clone());
            raw_b.write_blocks(&writes).unwrap();
            let raw_clock_1 = SimClock::new();
            let raw_1 = MemDisk::new(BLOCKS, BS, raw_clock_1.clone());
            for (b, d) in &data {
                raw_1.write_block(*b, d).unwrap();
            }

            batched.write_blocks(&writes).unwrap();
            seq.write_blocks(&writes).unwrap();
            for (b, d) in &data {
                single.write_block(*b, d).unwrap();
            }

            prop_assert_eq!(
                disk_b.snapshot().as_bytes(),
                disk_s.snapshot().as_bytes(),
                "sharded and sequential batch paths must land identical media"
            );
            prop_assert_eq!(
                disk_b.snapshot().as_bytes(),
                disk_1.snapshot().as_bytes(),
                "sector-batch and per-sector paths must land identical media"
            );

            let total: usize = data.iter().map(|(_, d)| d.len()).sum();
            prop_assert_eq!(
                clock_b.now() - raw_clock_b.now(),
                model.aes_cost(total),
                "batch path charges one amortized aes_cost(total bytes)"
            );
            let mut per_sector = SimDuration::ZERO;
            for _ in 0..data.len() {
                per_sector += model.aes_cost(BS);
            }
            prop_assert_eq!(
                clock_1.now() - raw_clock_1.now(),
                per_sector,
                "per-sector loop charges aes_cost(block) once per call"
            );
        }
    }
}
