//! `dm-crypt`: a transparent encryption target.
//!
//! Creates an "encrypted block device" over a raw one, exactly like the
//! kernel module Android FDE is built on (§II-A of the paper). Each block is
//! encrypted independently with a sector cipher (CBC-ESSIV for the Android
//! 4.2 stack the paper used, XTS optionally), and the AES work is charged to
//! the simulated clock via a CPU cost model so throughput experiments see
//! realistic encryption overhead.

use mobiceal_blockdev::{BlockDevice, BlockDeviceError, BlockIndex, SharedDevice};
use mobiceal_crypto::{Aes256, CbcEssiv, SectorCipher, Xts};
use mobiceal_sim::{CpuCostModel, SimClock};

/// Which sector cipher a [`DmCrypt`] instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CipherMode {
    /// `aes-cbc-essiv:sha256` — Android 4.2 FDE default.
    CbcEssiv,
    /// `aes-xts-plain64` — modern dm-crypt default.
    XtsPlain64,
}

/// A transparent encryption layer over a block device.
///
/// Reads decrypt; writes encrypt; the backing device only ever sees
/// ciphertext. Without the key, backing blocks are indistinguishable from
/// random — the property MobiCeal's dummy writes rely on (§IV-A Q2).
pub struct DmCrypt {
    backing: SharedDevice,
    cipher: Box<dyn SectorCipher>,
    mode: CipherMode,
    timing: Option<(SimClock, CpuCostModel)>,
}

impl std::fmt::Debug for DmCrypt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DmCrypt").field("mode", &self.mode).finish_non_exhaustive()
    }
}

impl DmCrypt {
    /// Creates an AES-256-CBC-ESSIV target (the Android FDE configuration).
    pub fn new_essiv(backing: SharedDevice, key: &[u8; 32]) -> Self {
        let essiv_key = mobiceal_crypto::sha256(key);
        DmCrypt {
            backing,
            cipher: Box::new(CbcEssiv::with_essiv_key(Aes256::new(key), &essiv_key)),
            mode: CipherMode::CbcEssiv,
            timing: None,
        }
    }

    /// Creates an AES-256-XTS target from a 64-byte key (data key ‖ tweak
    /// key).
    pub fn new_xts(backing: SharedDevice, key: &[u8; 64]) -> Self {
        let mut k1 = [0u8; 32];
        let mut k2 = [0u8; 32];
        k1.copy_from_slice(&key[..32]);
        k2.copy_from_slice(&key[32..]);
        DmCrypt {
            backing,
            cipher: Box::new(Xts::new(Aes256::new(&k1), Aes256::new(&k2))),
            mode: CipherMode::XtsPlain64,
            timing: None,
        }
    }

    /// Attaches CPU timing: AES work will advance `clock` per `model`.
    pub fn with_timing(mut self, clock: SimClock, model: CpuCostModel) -> Self {
        self.timing = Some((clock, model));
        self
    }

    /// The cipher mode in use.
    pub fn mode(&self) -> CipherMode {
        self.mode
    }

    fn charge_aes(&self, bytes: usize) {
        if let Some((clock, model)) = &self.timing {
            clock.advance(model.aes_cost(bytes));
        }
    }
}

impl BlockDevice for DmCrypt {
    fn num_blocks(&self) -> u64 {
        self.backing.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.backing.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        let ct = self.backing.read_block(index)?;
        self.charge_aes(ct.len());
        Ok(self.cipher.decrypt_sector(index, &ct))
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.check_buffer(data)?;
        self.charge_aes(data.len());
        let ct = self.cipher.encrypt_sector(index, data);
        self.backing.write_block(index, &ct)
    }

    /// Batched read: one vectored read on the backing device, then
    /// decryption of every sector. AES time for the whole batch is charged
    /// in one clock advance.
    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        let cts = self.backing.read_blocks(indices)?;
        self.charge_aes(cts.iter().map(Vec::len).sum());
        Ok(indices
            .iter()
            .zip(&cts)
            .map(|(&index, ct)| self.cipher.decrypt_sector(index, ct))
            .collect())
    }

    /// Batched write: encrypts every sector up front, then issues one
    /// vectored write on the backing device. A wrong-sized buffer mid-batch
    /// writes the valid prefix first, preserving sequential fail-fast
    /// semantics. AES time for the whole valid batch is charged even when
    /// the backing write then fails mid-batch — the encryption work really
    /// was done up front, which is where the batched path's cost
    /// deliberately differs from the sequential loop's on failure.
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        let bad = writes.iter().position(|&(_, d)| d.len() != self.block_size());
        let valid = &writes[..bad.unwrap_or(writes.len())];
        self.charge_aes(valid.iter().map(|(_, d)| d.len()).sum());
        let cts: Vec<(BlockIndex, Vec<u8>)> = valid
            .iter()
            .map(|&(index, data)| (index, self.cipher.encrypt_sector(index, data)))
            .collect();
        let refs: Vec<(BlockIndex, &[u8])> =
            cts.iter().map(|(index, ct)| (*index, ct.as_slice())).collect();
        self.backing.write_blocks(&refs)?;
        match bad {
            Some(pos) => Err(BlockDeviceError::WrongBufferSize {
                got: writes[pos].1.len(),
                expected: self.block_size(),
            }),
            None => Ok(()),
        }
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.backing.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;
    use std::sync::Arc;

    fn setup(mode: CipherMode) -> (Arc<MemDisk>, DmCrypt) {
        let raw = Arc::new(MemDisk::with_default_timing(32, 4096));
        let enc = match mode {
            CipherMode::CbcEssiv => DmCrypt::new_essiv(raw.clone(), &[0x11; 32]),
            CipherMode::XtsPlain64 => DmCrypt::new_xts(raw.clone(), &[0x22; 64]),
        };
        (raw, enc)
    }

    #[test]
    fn transparent_roundtrip_essiv() {
        let (_, enc) = setup(CipherMode::CbcEssiv);
        let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        enc.write_block(5, &data).unwrap();
        assert_eq!(enc.read_block(5).unwrap(), data);
    }

    #[test]
    fn transparent_roundtrip_xts() {
        let (_, enc) = setup(CipherMode::XtsPlain64);
        let data: Vec<u8> = (0..4096).map(|i| (i % 13) as u8).collect();
        enc.write_block(9, &data).unwrap();
        assert_eq!(enc.read_block(9).unwrap(), data);
    }

    #[test]
    fn backing_sees_only_ciphertext() {
        let (raw, enc) = setup(CipherMode::CbcEssiv);
        let data = vec![0u8; 4096];
        enc.write_block(0, &data).unwrap();
        let at_rest = raw.read_block(0).unwrap();
        assert_ne!(at_rest, data);
        // Ciphertext of all-zero plaintext should look high-entropy.
        let snap = raw.snapshot();
        assert!(snap.block_entropy(0) > 7.0, "entropy {}", snap.block_entropy(0));
    }

    #[test]
    fn wrong_key_reads_garbage() {
        let raw = Arc::new(MemDisk::with_default_timing(8, 4096));
        let enc_a = DmCrypt::new_essiv(raw.clone(), &[0xAA; 32]);
        let enc_b = DmCrypt::new_essiv(raw.clone(), &[0xBB; 32]);
        let data = vec![0x55u8; 4096];
        enc_a.write_block(1, &data).unwrap();
        assert_ne!(enc_b.read_block(1).unwrap(), data);
    }

    #[test]
    fn same_plaintext_different_blocks_differs_at_rest() {
        let (raw, enc) = setup(CipherMode::CbcEssiv);
        let data = vec![0x77u8; 4096];
        enc.write_block(0, &data).unwrap();
        enc.write_block(1, &data).unwrap();
        assert_ne!(raw.read_block(0).unwrap(), raw.read_block(1).unwrap());
    }

    #[test]
    fn timing_charges_cpu_cost() {
        let clock = SimClock::new();
        let raw = Arc::new(MemDisk::new(8, 4096, clock.clone()));
        let enc =
            DmCrypt::new_essiv(raw, &[1; 32]).with_timing(clock.clone(), CpuCostModel::nexus4());
        let t0 = clock.now();
        enc.write_block(0, &vec![0u8; 4096]).unwrap();
        let with_crypto = clock.now() - t0;

        let clock2 = SimClock::new();
        let raw2 = Arc::new(MemDisk::new(8, 4096, clock2.clone()));
        let t1 = clock2.now();
        raw2.write_block(0, &vec![0u8; 4096]).unwrap();
        let without_crypto = clock2.now() - t1;

        assert!(with_crypto > without_crypto);
    }

    #[test]
    fn geometry_passthrough() {
        let (raw, enc) = setup(CipherMode::XtsPlain64);
        assert_eq!(enc.num_blocks(), raw.num_blocks());
        assert_eq!(enc.block_size(), raw.block_size());
        assert!(enc.flush().is_ok());
    }

    #[test]
    fn rejects_bad_buffer() {
        let (_, enc) = setup(CipherMode::CbcEssiv);
        assert!(matches!(
            enc.write_block(0, &[0u8; 100]),
            Err(BlockDeviceError::WrongBufferSize { .. })
        ));
    }

    #[test]
    fn batched_ops_produce_identical_ciphertext_to_sequential() {
        for mode in [CipherMode::CbcEssiv, CipherMode::XtsPlain64] {
            let (raw_a, enc_a) = setup(mode);
            let (raw_b, enc_b) = setup(mode);
            let blocks: Vec<(u64, Vec<u8>)> = (0..8)
                .map(|i| (i * 3 % 32, (0..4096).map(|j| ((i + j) % 251) as u8).collect()))
                .collect();
            let batch: Vec<(u64, &[u8])> = blocks.iter().map(|(b, d)| (*b, d.as_slice())).collect();
            enc_a.write_blocks(&batch).unwrap();
            for (b, d) in &blocks {
                enc_b.write_block(*b, d).unwrap();
            }
            // Sector ciphers are deterministic per (key, sector): batched
            // and sequential writes must produce identical media.
            assert_eq!(raw_a.snapshot().as_bytes(), raw_b.snapshot().as_bytes());
            let indices: Vec<u64> = blocks.iter().map(|(b, _)| *b).collect();
            let plain = enc_a.read_blocks(&indices).unwrap();
            for ((_, expect), got) in blocks.iter().zip(&plain) {
                assert_eq!(expect, got, "batched read decrypts to the written plaintext");
            }
        }
    }

    #[test]
    fn batched_write_bad_buffer_persists_prefix() {
        let (raw, enc) = setup(CipherMode::CbcEssiv);
        let good = vec![7u8; 4096];
        let short = vec![0u8; 100];
        let err = enc.write_blocks(&[(0, good.as_slice()), (1, short.as_slice())]).unwrap_err();
        assert!(matches!(err, BlockDeviceError::WrongBufferSize { got: 100, .. }));
        assert_eq!(enc.read_block(0).unwrap(), good, "valid prefix landed");
        assert!(!raw.snapshot().is_zero_block(0));
        assert!(raw.snapshot().is_zero_block(1), "failing block never written");
    }
}
