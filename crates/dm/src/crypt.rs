//! `dm-crypt`: a transparent encryption target.
//!
//! Creates an "encrypted block device" over a raw one, exactly like the
//! kernel module Android FDE is built on (§II-A of the paper). Each block is
//! encrypted independently with a sector cipher (CBC-ESSIV for the Android
//! 4.2 stack the paper used, XTS optionally), and the AES work is charged to
//! the simulated clock via a CPU cost model so throughput experiments see
//! realistic encryption overhead.

use mobiceal_blockdev::{BlockDevice, BlockDeviceError, BlockIndex, SharedDevice};
use mobiceal_crypto::{Aes256, CbcEssiv, SectorCipher, Xts};
use mobiceal_sim::{CpuCostModel, SimClock};

/// Which sector cipher a [`DmCrypt`] instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CipherMode {
    /// `aes-cbc-essiv:sha256` — Android 4.2 FDE default.
    CbcEssiv,
    /// `aes-xts-plain64` — modern dm-crypt default.
    XtsPlain64,
}

/// Batches at or above this many sectors are sharded across worker
/// threads by default (see [`DmCrypt::with_parallelism`]).
pub const DEFAULT_PARALLEL_MIN_SECTORS: usize = 8;

/// The floor [`DmCrypt::with_parallelism`] clamps `min_sectors` to: a
/// one-sector batch has nothing to shard. Configuration layers validate
/// against this instead of hard-coding the clamp.
pub const MIN_PARALLEL_SECTORS: usize = 2;

/// Under the default policy each worker must carry at least this much
/// payload before threads are spawned: spawning a scoped thread costs tens
/// of microseconds, so a shard has to hold enough AES work to amortize it.
/// Retuned for the pipelined wide-lane core: at ~3 GiB/s XTS per core,
/// 64 KiB is only ~20 µs of AES — thread-spawn noise — so the floor is
/// 256 KiB (~100 µs), the same amortization ratio the pre-pipelined
/// threshold bought at ~627 MiB/s. Batches too shallow to feed every
/// worker simply use fewer threads, or none.
pub const DEFAULT_MIN_SHARD_BYTES: usize = 256 * 1024;

/// Upper bound on the default worker count; batches are rarely deep enough
/// to feed more cores, and tests run many stacks concurrently.
const DEFAULT_MAX_WORKERS: usize = 8;

/// A transparent encryption layer over a block device.
///
/// Reads decrypt; writes encrypt; the backing device only ever sees
/// ciphertext. Without the key, backing blocks are indistinguishable from
/// random — the property MobiCeal's dummy writes rely on (§IV-A Q2).
///
/// Batched reads/writes encrypt sectors *in place* (one ciphertext arena
/// per write batch, zero extra allocation per read batch) through the
/// cipher's sector-batch entry points — one virtual dispatch per batch
/// shard, wide AES lanes inside — and, for batches of at least
/// [`DEFAULT_PARALLEL_MIN_SECTORS`] sectors carrying
/// [`DEFAULT_MIN_SHARD_BYTES`] of payload per worker, shard the AES work
/// across scoped worker threads — the real-time analogue of dm-crypt's
/// per-CPU crypto queues. Sector ciphers are deterministic per
/// `(key, sector, data)`, and the simulated-clock charge is computed from
/// byte counts before the work is sharded, so ciphertext on the backing
/// device *and* virtual-clock charges are bit-for-bit identical to the
/// sequential path (pinned by `tests/parallel_props.rs`).
pub struct DmCrypt {
    backing: SharedDevice,
    cipher: Box<dyn SectorCipher>,
    mode: CipherMode,
    timing: Option<(SimClock, CpuCostModel)>,
    /// Maximum worker threads for batched crypto (1 = always sequential).
    workers: usize,
    /// Minimum batch depth, in sectors, before threads are spawned.
    parallel_min_sectors: usize,
    /// Minimum payload bytes per worker before threads are spawned
    /// (0 = shard on depth alone; set by [`DmCrypt::with_parallelism`]).
    min_shard_bytes: usize,
}

impl std::fmt::Debug for DmCrypt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DmCrypt").field("mode", &self.mode).finish_non_exhaustive()
    }
}

impl DmCrypt {
    /// Creates an AES-256-CBC-ESSIV target (the Android FDE configuration).
    pub fn new_essiv(backing: SharedDevice, key: &[u8; 32]) -> Self {
        let essiv_key = mobiceal_crypto::sha256(key);
        Self::with_cipher(
            backing,
            Box::new(CbcEssiv::with_essiv_key(Aes256::new(key), &essiv_key)),
            CipherMode::CbcEssiv,
        )
    }

    /// Creates an AES-256-XTS target from a 64-byte key (data key ‖ tweak
    /// key).
    pub fn new_xts(backing: SharedDevice, key: &[u8; 64]) -> Self {
        let mut k1 = [0u8; 32];
        let mut k2 = [0u8; 32];
        k1.copy_from_slice(&key[..32]);
        k2.copy_from_slice(&key[32..]);
        Self::with_cipher(
            backing,
            Box::new(Xts::new(Aes256::new(&k1), Aes256::new(&k2))),
            CipherMode::XtsPlain64,
        )
    }

    fn with_cipher(backing: SharedDevice, cipher: Box<dyn SectorCipher>, mode: CipherMode) -> Self {
        DmCrypt {
            backing,
            cipher,
            mode,
            timing: None,
            workers: default_workers(),
            parallel_min_sectors: DEFAULT_PARALLEL_MIN_SECTORS,
            min_shard_bytes: DEFAULT_MIN_SHARD_BYTES,
        }
    }

    /// Attaches CPU timing: AES work will advance `clock` per `model`.
    pub fn with_timing(mut self, clock: SimClock, model: CpuCostModel) -> Self {
        self.timing = Some((clock, model));
        self
    }

    /// Configures batched-crypto parallelism explicitly: shard batches of
    /// at least `min_sectors` sectors across up to `workers` threads.
    /// `workers <= 1` keeps every batch on the calling thread.
    ///
    /// Unlike the default policy, an explicit configuration shards on
    /// batch depth alone — no [`DEFAULT_MIN_SHARD_BYTES`] amortization
    /// guard — so tests and tuning runs can force the threaded path for
    /// any batch the depth threshold admits.
    ///
    /// Parallelism only changes wall-clock speed: ciphertext and
    /// simulated-clock charges are identical in either configuration.
    pub fn with_parallelism(mut self, workers: usize, min_sectors: usize) -> Self {
        self.workers = workers.max(1);
        self.parallel_min_sectors = min_sectors.max(MIN_PARALLEL_SECTORS);
        self.min_shard_bytes = 0;
        self
    }

    /// Disables batched-crypto parallelism (equivalent to
    /// `with_parallelism(1, _)`).
    pub fn sequential(self) -> Self {
        let min = self.parallel_min_sectors;
        self.with_parallelism(1, min)
    }

    /// The cipher mode in use.
    pub fn mode(&self) -> CipherMode {
        self.mode
    }

    fn charge_aes(&self, bytes: usize) {
        if let Some((clock, model)) = &self.timing {
            clock.advance(model.aes_cost(bytes));
        }
    }

    /// How many worker threads a batch of `jobs` sectors carrying `bytes`
    /// of payload should be sharded across: the configured worker count,
    /// reduced so every shard holds enough bytes to amortize its thread
    /// spawn, and 1 (inline) for batches below the depth threshold.
    fn shard_count(&self, jobs: usize, bytes: usize) -> usize {
        if jobs < self.parallel_min_sectors {
            return 1;
        }
        match self.min_shard_bytes {
            0 => self.workers,
            min => self.workers.min(bytes / min).max(1),
        }
    }

    /// Runs `cipher op` over every `(sector, buffer)` job, sharding the
    /// batch across scoped worker threads when it is deep enough. Jobs are
    /// disjoint buffers and sector ciphers are pure per job, so sharding
    /// cannot change the bytes produced. Each shard crosses the cipher's
    /// virtual dispatch once via the sector-batch entry points; inside,
    /// the mode feeds the wide AES lanes sector by sector.
    fn crypt_sectors(&self, mut jobs: Vec<(BlockIndex, &mut [u8])>, encrypt: bool) {
        let cipher: &dyn SectorCipher = &*self.cipher;
        let run = |chunk: &mut [(BlockIndex, &mut [u8])]| {
            if encrypt {
                cipher.encrypt_sectors_in_place(chunk);
            } else {
                cipher.decrypt_sectors_in_place(chunk);
            }
        };
        let shards = self.shard_count(jobs.len(), jobs.iter().map(|(_, b)| b.len()).sum());
        if shards <= 1 {
            run(&mut jobs);
            return;
        }
        let per_shard = jobs.len().div_ceil(shards);
        let run = &run;
        std::thread::scope(|s| {
            for chunk in jobs.chunks_mut(per_shard) {
                s.spawn(move || run(chunk));
            }
        });
    }
}

/// Default worker count: the machine's parallelism, capped so deep test
/// matrices don't oversubscribe the host.
fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(DEFAULT_MAX_WORKERS)
}

impl BlockDevice for DmCrypt {
    fn num_blocks(&self) -> u64 {
        self.backing.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.backing.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        let mut buf = self.backing.read_block(index)?;
        self.charge_aes(buf.len());
        self.cipher.decrypt_sector_in_place(index, &mut buf);
        Ok(buf)
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.check_buffer(data)?;
        self.charge_aes(data.len());
        let mut ct = data.to_vec();
        self.cipher.encrypt_sector_in_place(index, &mut ct);
        self.backing.write_block(index, &ct)
    }

    /// Batched read: one vectored read on the backing device, then in-place
    /// (possibly thread-sharded) decryption of every sector — no extra
    /// allocation. AES time for the whole batch is charged in one clock
    /// advance, before the work is sharded.
    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        let mut bufs = self.backing.read_blocks(indices)?;
        self.charge_aes(bufs.iter().map(Vec::len).sum());
        let jobs: Vec<(BlockIndex, &mut [u8])> = indices
            .iter()
            .zip(bufs.iter_mut())
            .map(|(&index, buf)| (index, buf.as_mut_slice()))
            .collect();
        self.crypt_sectors(jobs, false);
        Ok(bufs)
    }

    /// Batched write: copies the batch into one contiguous ciphertext
    /// arena (a single allocation, not one per sector), encrypts every
    /// sector in place — sharded across threads for deep batches — then
    /// issues one vectored write on the backing device. A wrong-sized
    /// buffer mid-batch writes the valid prefix first, preserving
    /// sequential fail-fast semantics. AES time for the whole valid batch
    /// is charged even when the backing write then fails mid-batch — the
    /// encryption work really was done up front, which is where the
    /// batched path's cost deliberately differs from the sequential loop's
    /// on failure.
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        let bs = self.block_size();
        let bad = writes.iter().position(|&(_, d)| d.len() != bs);
        let valid = &writes[..bad.unwrap_or(writes.len())];
        self.charge_aes(valid.iter().map(|(_, d)| d.len()).sum());
        let mut arena = Vec::with_capacity(valid.len() * bs);
        for &(_, data) in valid {
            arena.extend_from_slice(data);
        }
        let jobs: Vec<(BlockIndex, &mut [u8])> = valid
            .iter()
            .zip(arena.chunks_mut(bs))
            .map(|(&(index, _), slot)| (index, slot))
            .collect();
        self.crypt_sectors(jobs, true);
        let refs: Vec<(BlockIndex, &[u8])> =
            valid.iter().zip(arena.chunks(bs)).map(|(&(index, _), ct)| (index, ct)).collect();
        self.backing.write_blocks(&refs)?;
        match bad {
            Some(pos) => {
                Err(BlockDeviceError::WrongBufferSize { got: writes[pos].1.len(), expected: bs })
            }
            None => Ok(()),
        }
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.backing.flush()
    }

    fn host_queue_enter(&self) {
        self.backing.host_queue_enter();
    }

    fn host_queue_leave(&self) {
        self.backing.host_queue_leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;
    use std::sync::Arc;

    fn setup(mode: CipherMode) -> (Arc<MemDisk>, DmCrypt) {
        let raw = Arc::new(MemDisk::with_default_timing(32, 4096));
        let enc = match mode {
            CipherMode::CbcEssiv => DmCrypt::new_essiv(raw.clone(), &[0x11; 32]),
            CipherMode::XtsPlain64 => DmCrypt::new_xts(raw.clone(), &[0x22; 64]),
        };
        (raw, enc)
    }

    #[test]
    fn transparent_roundtrip_essiv() {
        let (_, enc) = setup(CipherMode::CbcEssiv);
        let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        enc.write_block(5, &data).unwrap();
        assert_eq!(enc.read_block(5).unwrap(), data);
    }

    #[test]
    fn transparent_roundtrip_xts() {
        let (_, enc) = setup(CipherMode::XtsPlain64);
        let data: Vec<u8> = (0..4096).map(|i| (i % 13) as u8).collect();
        enc.write_block(9, &data).unwrap();
        assert_eq!(enc.read_block(9).unwrap(), data);
    }

    #[test]
    fn backing_sees_only_ciphertext() {
        let (raw, enc) = setup(CipherMode::CbcEssiv);
        let data = vec![0u8; 4096];
        enc.write_block(0, &data).unwrap();
        let at_rest = raw.read_block(0).unwrap();
        assert_ne!(at_rest, data);
        // Ciphertext of all-zero plaintext should look high-entropy.
        let snap = raw.snapshot();
        assert!(snap.block_entropy(0) > 7.0, "entropy {}", snap.block_entropy(0));
    }

    #[test]
    fn wrong_key_reads_garbage() {
        let raw = Arc::new(MemDisk::with_default_timing(8, 4096));
        let enc_a = DmCrypt::new_essiv(raw.clone(), &[0xAA; 32]);
        let enc_b = DmCrypt::new_essiv(raw.clone(), &[0xBB; 32]);
        let data = vec![0x55u8; 4096];
        enc_a.write_block(1, &data).unwrap();
        assert_ne!(enc_b.read_block(1).unwrap(), data);
    }

    #[test]
    fn same_plaintext_different_blocks_differs_at_rest() {
        let (raw, enc) = setup(CipherMode::CbcEssiv);
        let data = vec![0x77u8; 4096];
        enc.write_block(0, &data).unwrap();
        enc.write_block(1, &data).unwrap();
        assert_ne!(raw.read_block(0).unwrap(), raw.read_block(1).unwrap());
    }

    #[test]
    fn timing_charges_cpu_cost() {
        let clock = SimClock::new();
        let raw = Arc::new(MemDisk::new(8, 4096, clock.clone()));
        let enc =
            DmCrypt::new_essiv(raw, &[1; 32]).with_timing(clock.clone(), CpuCostModel::nexus4());
        let t0 = clock.now();
        enc.write_block(0, &vec![0u8; 4096]).unwrap();
        let with_crypto = clock.now() - t0;

        let clock2 = SimClock::new();
        let raw2 = Arc::new(MemDisk::new(8, 4096, clock2.clone()));
        let t1 = clock2.now();
        raw2.write_block(0, &vec![0u8; 4096]).unwrap();
        let without_crypto = clock2.now() - t1;

        assert!(with_crypto > without_crypto);
    }

    #[test]
    fn geometry_passthrough() {
        let (raw, enc) = setup(CipherMode::XtsPlain64);
        assert_eq!(enc.num_blocks(), raw.num_blocks());
        assert_eq!(enc.block_size(), raw.block_size());
        assert!(enc.flush().is_ok());
    }

    #[test]
    fn rejects_bad_buffer() {
        let (_, enc) = setup(CipherMode::CbcEssiv);
        assert!(matches!(
            enc.write_block(0, &[0u8; 100]),
            Err(BlockDeviceError::WrongBufferSize { .. })
        ));
    }

    #[test]
    fn batched_ops_produce_identical_ciphertext_to_sequential() {
        for mode in [CipherMode::CbcEssiv, CipherMode::XtsPlain64] {
            let (raw_a, enc_a) = setup(mode);
            let (raw_b, enc_b) = setup(mode);
            let blocks: Vec<(u64, Vec<u8>)> = (0..8)
                .map(|i| (i * 3 % 32, (0..4096).map(|j| ((i + j) % 251) as u8).collect()))
                .collect();
            let batch: Vec<(u64, &[u8])> = blocks.iter().map(|(b, d)| (*b, d.as_slice())).collect();
            enc_a.write_blocks(&batch).unwrap();
            for (b, d) in &blocks {
                enc_b.write_block(*b, d).unwrap();
            }
            // Sector ciphers are deterministic per (key, sector): batched
            // and sequential writes must produce identical media.
            assert_eq!(raw_a.snapshot().as_bytes(), raw_b.snapshot().as_bytes());
            let indices: Vec<u64> = blocks.iter().map(|(b, _)| *b).collect();
            let plain = enc_a.read_blocks(&indices).unwrap();
            for ((_, expect), got) in blocks.iter().zip(&plain) {
                assert_eq!(expect, got, "batched read decrypts to the written plaintext");
            }
        }
    }

    #[test]
    fn shard_policy_amortizes_thread_spawns() {
        let (_, enc) = setup(CipherMode::CbcEssiv);
        let enc = enc.with_parallelism(8, 8);
        // Explicit config shards on depth alone.
        assert_eq!(enc.shard_count(7, 7 * 512), 1, "below depth threshold");
        assert_eq!(enc.shard_count(64, 64 * 512), 8, "explicit config ignores bytes");
        // The default policy refuses to spawn threads that would each get
        // less than DEFAULT_MIN_SHARD_BYTES of work — retuned to 256 KiB
        // for the wide-lane core, so the 64x4 KiB batch the stack write
        // path emits now stays inline (it is ~80 µs of AES, not worth a
        // spawn) while genuinely deep batches still fan out.
        let (_, dflt) = setup(CipherMode::CbcEssiv);
        let dflt = DmCrypt { workers: 8, ..dflt };
        assert_eq!(dflt.shard_count(64, 64 * 512), 1, "32 KiB batch stays inline");
        assert_eq!(dflt.shard_count(64, 64 * 4096), 1, "256 KiB batch feeds one worker");
        assert_eq!(dflt.shard_count(256, 256 * 4096), 4, "1 MiB batch feeds 4 workers");
        assert_eq!(dflt.shard_count(1024, 1024 * 4096), 8, "deep batch uses all workers");
        assert_eq!(dflt.shard_count(4, 4 << 20), 1, "depth threshold still applies");
    }

    #[test]
    fn batched_write_bad_buffer_persists_prefix() {
        let (raw, enc) = setup(CipherMode::CbcEssiv);
        let good = vec![7u8; 4096];
        let short = vec![0u8; 100];
        let err = enc.write_blocks(&[(0, good.as_slice()), (1, short.as_slice())]).unwrap_err();
        assert!(matches!(err, BlockDeviceError::WrongBufferSize { got: 100, .. }));
        assert_eq!(enc.read_block(0).unwrap(), good, "valid prefix landed");
        assert!(!raw.snapshot().is_zero_block(0));
        assert!(raw.snapshot().is_zero_block(1), "failing block never written");
    }
}
