//! `dm-linear`: expose a contiguous sub-range of a device as a device.

use mobiceal_blockdev::{BlockDevice, BlockDeviceError, BlockIndex, SharedDevice};

/// A linear remapping target: blocks `[offset, offset+len)` of the backing
/// device appear as blocks `[0, len)`.
///
/// Used to carve the userdata partition's data area out from the metadata
/// region and the 16 KiB encryption footer (Fig. 3 of the paper).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mobiceal_blockdev::{BlockDevice, MemDisk};
/// use mobiceal_dm::DmLinear;
///
/// let raw = Arc::new(MemDisk::with_default_timing(100, 512));
/// let part = DmLinear::new(raw.clone(), 10, 20)?;
/// part.write_block(0, &vec![1u8; 512])?;
/// assert_eq!(raw.read_block(10)?, vec![1u8; 512]); // remapped
/// # Ok::<(), mobiceal_blockdev::BlockDeviceError>(())
/// ```
#[derive(Clone)]
pub struct DmLinear {
    backing: SharedDevice,
    offset: u64,
    len: u64,
}

impl std::fmt::Debug for DmLinear {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DmLinear")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

impl DmLinear {
    /// Maps `len` blocks starting at `offset` of `backing`.
    ///
    /// # Errors
    ///
    /// [`BlockDeviceError::OutOfRange`] if the range does not fit on the
    /// backing device or `len == 0`.
    pub fn new(backing: SharedDevice, offset: u64, len: u64) -> Result<Self, BlockDeviceError> {
        let end = offset.checked_add(len).ok_or(BlockDeviceError::OutOfRange {
            index: u64::MAX,
            num_blocks: backing.num_blocks(),
        })?;
        if len == 0 || end > backing.num_blocks() {
            return Err(BlockDeviceError::OutOfRange {
                index: end.saturating_sub(1),
                num_blocks: backing.num_blocks(),
            });
        }
        Ok(DmLinear { backing, offset, len })
    }

    /// First backing block of this mapping.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

impl BlockDevice for DmLinear {
    fn num_blocks(&self) -> u64 {
        self.len
    }

    fn block_size(&self) -> usize {
        self.backing.block_size()
    }

    fn read_block(&self, index: BlockIndex) -> Result<Vec<u8>, BlockDeviceError> {
        self.check_index(index)?;
        self.backing.read_block(self.offset + index)
    }

    fn write_block(&self, index: BlockIndex, data: &[u8]) -> Result<(), BlockDeviceError> {
        self.check_index(index)?;
        self.backing.write_block(self.offset + index, data)
    }

    /// Batched read: remaps the whole batch and issues one vectored read on
    /// the backing device (prefix-then-error on a bad index, like the
    /// sequential loop).
    fn read_blocks(&self, indices: &[BlockIndex]) -> Result<Vec<Vec<u8>>, BlockDeviceError> {
        mobiceal_blockdev::read_blocks_remapped(&self.backing, indices, self.len, |i| {
            self.offset + i
        })
    }

    /// Batched write: remaps the whole batch and issues one vectored write
    /// on the backing device (prefix-then-error on a bad index, like the
    /// sequential loop).
    fn write_blocks(&self, writes: &[(BlockIndex, &[u8])]) -> Result<(), BlockDeviceError> {
        mobiceal_blockdev::write_blocks_remapped(&self.backing, writes, self.len, |i| {
            self.offset + i
        })
    }

    fn flush(&self) -> Result<(), BlockDeviceError> {
        self.backing.flush()
    }

    fn host_queue_enter(&self) {
        self.backing.host_queue_enter();
    }

    fn host_queue_leave(&self) {
        self.backing.host_queue_leave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::MemDisk;
    use std::sync::Arc;

    fn raw() -> Arc<MemDisk> {
        Arc::new(MemDisk::with_default_timing(100, 512))
    }

    #[test]
    fn remaps_reads_and_writes() {
        let backing = raw();
        let lin = DmLinear::new(backing.clone(), 50, 10).unwrap();
        assert_eq!(lin.num_blocks(), 10);
        assert_eq!(lin.block_size(), 512);
        lin.write_block(9, &vec![3u8; 512]).unwrap();
        assert_eq!(backing.read_block(59).unwrap(), vec![3u8; 512]);
        assert_eq!(lin.read_block(9).unwrap(), vec![3u8; 512]);
    }

    #[test]
    fn rejects_access_past_mapping() {
        let lin = DmLinear::new(raw(), 50, 10).unwrap();
        assert!(matches!(lin.read_block(10), Err(BlockDeviceError::OutOfRange { .. })));
    }

    #[test]
    fn rejects_range_past_device() {
        assert!(DmLinear::new(raw(), 95, 10).is_err());
        assert!(DmLinear::new(raw(), 0, 0).is_err());
        assert!(DmLinear::new(raw(), u64::MAX, 2).is_err());
        assert!(DmLinear::new(raw(), 0, 100).is_ok());
    }

    #[test]
    fn adjacent_partitions_are_isolated() {
        let backing = raw();
        let a = DmLinear::new(backing.clone(), 0, 50).unwrap();
        let b = DmLinear::new(backing.clone(), 50, 50).unwrap();
        a.write_block(49, &vec![1u8; 512]).unwrap();
        b.write_block(0, &vec![2u8; 512]).unwrap();
        assert_eq!(a.read_block(49).unwrap(), vec![1u8; 512]);
        assert_eq!(b.read_block(0).unwrap(), vec![2u8; 512]);
    }

    #[test]
    fn flush_propagates() {
        let lin = DmLinear::new(raw(), 0, 10).unwrap();
        assert!(lin.flush().is_ok());
    }

    #[test]
    fn batched_ops_remap_like_sequential() {
        let backing = raw();
        let lin = DmLinear::new(backing.clone(), 20, 10).unwrap();
        let a = vec![1u8; 512];
        let b = vec![2u8; 512];
        lin.write_blocks(&[(0, a.as_slice()), (9, b.as_slice())]).unwrap();
        assert_eq!(backing.read_block(20).unwrap(), a);
        assert_eq!(backing.read_block(29).unwrap(), b);
        assert_eq!(lin.read_blocks(&[0, 9]).unwrap(), vec![a.clone(), b.clone()]);
        // Bytes identical to the sequential path on a twin device.
        let backing2 = raw();
        let lin2 = DmLinear::new(backing2.clone(), 20, 10).unwrap();
        lin2.write_block(0, &a).unwrap();
        lin2.write_block(9, &b).unwrap();
        assert_eq!(backing.snapshot().as_bytes(), backing2.snapshot().as_bytes());
    }

    #[test]
    fn batched_write_out_of_range_persists_prefix() {
        let backing = raw();
        let lin = DmLinear::new(backing.clone(), 0, 10).unwrap();
        let a = vec![3u8; 512];
        let err = lin.write_blocks(&[(1, a.as_slice()), (10, a.as_slice())]).unwrap_err();
        assert!(matches!(err, BlockDeviceError::OutOfRange { index: 10, .. }));
        assert_eq!(backing.read_block(1).unwrap(), a, "valid prefix landed");
        assert!(matches!(
            lin.read_blocks(&[0, 11]),
            Err(BlockDeviceError::OutOfRange { index: 11, .. })
        ));
    }
}
