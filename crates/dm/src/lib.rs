//! Userspace device mapper.
//!
//! Linux's device mapper lets block devices be stacked: `dm-crypt` places an
//! "encrypted block device" over a raw one (this is how Android FDE works,
//! §II-A of the paper), `dm-linear` carves out sub-ranges, and `dm-thin`
//! (in `mobiceal-thinp`) provides thin provisioning. This crate reproduces
//! the first two as ordinary [`mobiceal_blockdev::BlockDevice`]
//! implementations, so stacks compose exactly like kernel dm tables:
//!
//! ```text
//!   SimFs  →  DmCrypt (AES-CBC-ESSIV)  →  DmLinear  →  MemDisk (eMMC)
//! ```
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use mobiceal_blockdev::{BlockDevice, MemDisk};
//! use mobiceal_dm::DmCrypt;
//!
//! let raw = Arc::new(MemDisk::with_default_timing(64, 4096));
//! let enc = DmCrypt::new_essiv(raw.clone(), &[0x42; 32]);
//! enc.write_block(3, &vec![7u8; 4096])?;
//! assert_eq!(enc.read_block(3)?, vec![7u8; 4096]);   // transparent
//! assert_ne!(raw.read_block(3)?, vec![7u8; 4096]);   // ciphertext at rest
//! # Ok::<(), mobiceal_blockdev::BlockDeviceError>(())
//! ```

#![forbid(unsafe_code)]

mod crypt;
mod linear;

pub use crypt::{CipherMode, DmCrypt, MIN_PARALLEL_SECTORS};
pub use linear::DmLinear;
