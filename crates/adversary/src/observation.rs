//! What the adversary captures at one checkpoint.

use mobiceal_blockdev::DiskSnapshot;
use mobiceal_thinp::MetadataView;

/// One checkpoint capture (§III-A): everything on the storage medium, plus
/// the decoded block-layer metadata (which lives at a known location and is
/// *not* secret, §IV-B), plus any logs on persistent public storage.
///
/// Deliberately absent: RAM contents, keys, passwords, and anything from an
/// active hidden session — the adversary never captures the device in
/// hidden mode (§III-A assumptions).
#[derive(Debug, Clone)]
pub struct Observation {
    /// Bit-exact image of the userdata partition.
    pub snapshot: DiskSnapshot,
    /// Decoded thin-pool metadata: bitmap + per-volume mappings. `None`
    /// for systems without a (readable) block-layer metadata area.
    pub metadata: Option<MetadataView>,
    /// Log lines recovered from persistent public storage.
    pub logs: Vec<String>,
}

impl Observation {
    /// A capture with only the disk image (e.g. a raw FDE device).
    pub fn disk_only(snapshot: DiskSnapshot) -> Self {
        Observation { snapshot, metadata: None, logs: Vec::new() }
    }

    /// Blocks that changed between this observation and a later one.
    ///
    /// # Panics
    ///
    /// Panics if the two snapshots have different geometry.
    pub fn changed_blocks(&self, later: &Observation) -> Vec<u64> {
        self.snapshot.changed_blocks(&later.snapshot)
    }

    /// Physical blocks mapped to volume `id` at capture time (empty set if
    /// metadata is unavailable).
    pub fn volume_physical_blocks(&self, id: u32) -> std::collections::HashSet<u64> {
        self.metadata
            .as_ref()
            .and_then(|m| m.volumes.get(&id))
            .map(|v| v.mappings.values().collect())
            .unwrap_or_default()
    }

    /// Mapped-block count for volume `id` (0 if unknown).
    pub fn mapped_blocks(&self, id: u32) -> u64 {
        self.metadata.as_ref().map(|m| m.mapped_blocks(id)).unwrap_or(0)
    }

    /// Volume ids present in the metadata.
    pub fn volume_ids(&self) -> Vec<u32> {
        self.metadata.as_ref().map(|m| m.volumes.keys().copied().collect()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_thinp::{Bitmap, VolumeMeta};
    use std::collections::BTreeMap;

    fn snap(bytes: &[u8]) -> DiskSnapshot {
        DiskSnapshot::new(2, bytes.len() as u64 / 2, bytes.to_vec())
    }

    #[test]
    fn disk_only_has_no_metadata() {
        let obs = Observation::disk_only(snap(&[0, 0, 1, 1]));
        assert!(obs.metadata.is_none());
        assert!(obs.volume_ids().is_empty());
        assert_eq!(obs.mapped_blocks(1), 0);
        assert!(obs.volume_physical_blocks(1).is_empty());
    }

    #[test]
    fn changed_blocks_delegates_to_snapshot() {
        let a = Observation::disk_only(snap(&[0, 0, 1, 1]));
        let b = Observation::disk_only(snap(&[0, 0, 9, 9]));
        assert_eq!(a.changed_blocks(&b), vec![1]);
    }

    #[test]
    fn metadata_accessors() {
        let mut volumes = BTreeMap::new();
        let mut mappings = mobiceal_thinp::ExtentMap::new();
        mappings.insert(0u64, 5u64);
        mappings.insert(1u64, 9u64);
        volumes.insert(2, VolumeMeta { id: 2, virtual_blocks: 16, mappings });
        let view = MetadataView { transaction_id: 1, bitmap: Bitmap::new(16), volumes };
        let obs = Observation {
            snapshot: snap(&[0u8; 32]),
            metadata: Some(view),
            logs: vec!["boot".into()],
        };
        assert_eq!(obs.volume_ids(), vec![2]);
        assert_eq!(obs.mapped_blocks(2), 2);
        assert_eq!(obs.volume_physical_blocks(2), [5u64, 9].into_iter().collect());
    }
}
