//! The §III-C multi-snapshot security game, run empirically.
//!
//! The paper proves MobiCeal secure in a simulation-based game; this module
//! *measures* the same game. Each round, a hidden bit `b` selects one of
//! two worlds built from the same seed: `Σ0` contains a hidden volume and
//! executes hidden writes, `Σ1` does not. Both execute an identical public
//! access pattern (the game's restriction that patterns agree on public
//! operations), the adversary receives an on-event snapshot after every
//! execution, and a [`Distinguisher`] guesses `b`. The empirical advantage
//! `|Pr[b' = b] − ½|` should be statistically indistinguishable from zero
//! for MobiCeal and close to ½ for the broken baselines.

use crate::distinguisher::Distinguisher;
use crate::observation::Observation;
use mobiceal_sim::Xoshiro256;

/// One playable world of the game.
///
/// Implementations adapt a storage system (MobiCeal, a baseline, …) to the
/// game's three moves. `hidden_write` is only invoked in the world where
/// the hidden volume exists.
pub trait GameWorld {
    /// Executes one public write event of roughly `blocks` blocks.
    fn public_write(&mut self, blocks: u64);

    /// Executes one hidden write event of roughly `blocks` blocks.
    fn hidden_write(&mut self, blocks: u64);

    /// Captures an on-event observation (snapshot + metadata + logs).
    fn observe(&self) -> Observation;
}

/// Parameters of the empirical game.
#[derive(Debug, Clone)]
pub struct GameConfig {
    /// Number of independent rounds (fresh worlds each).
    pub rounds: u32,
    /// Public write events per round.
    pub events_per_round: u32,
    /// Uniform range of public event sizes in blocks (inclusive).
    pub public_blocks: (u64, u64),
    /// Uniform range of hidden event sizes in blocks (inclusive).
    pub hidden_blocks: (u64, u64),
    /// Probability that a hidden write accompanies a public event (in the
    /// hidden world).
    pub hidden_event_prob: f64,
}

impl Default for GameConfig {
    fn default() -> Self {
        GameConfig {
            rounds: 40,
            events_per_round: 12,
            public_blocks: (4, 32),
            hidden_blocks: (2, 16),
            hidden_event_prob: 0.5,
        }
    }
}

/// Outcome of an empirical game.
#[derive(Debug, Clone, PartialEq)]
pub struct GameResult {
    /// The distinguisher evaluated.
    pub distinguisher: String,
    /// Rounds played.
    pub rounds: u32,
    /// Rounds in which the guess matched `b`.
    pub wins: u32,
    /// `wins / rounds`.
    pub accuracy: f64,
    /// `|accuracy − ½|` (the paper's advantage).
    pub advantage: f64,
    /// Wilson 95 % confidence interval on the accuracy.
    pub accuracy_ci95: (f64, f64),
}

impl GameResult {
    /// Whether an accuracy of ½ (no advantage) lies inside the confidence
    /// interval — i.e. the distinguisher is statistically blind.
    pub fn is_blind(&self) -> bool {
        self.accuracy_ci95.0 <= 0.5 && 0.5 <= self.accuracy_ci95.1
    }
}

impl std::fmt::Display for GameResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<20} accuracy {:.3} (95% CI {:.3}-{:.3})  advantage {:.3}",
            self.distinguisher,
            self.accuracy,
            self.accuracy_ci95.0,
            self.accuracy_ci95.1,
            self.advantage
        )
    }
}

fn wilson_ci(wins: u32, n: u32) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let n = n as f64;
    let p = wins as f64 / n;
    let denom = 1.0 + z * z / n;
    let centre = (p + z * z / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z * z / (4.0 * n * n)).sqrt();
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// Runs the empirical game: `make_world(seed, with_hidden)` builds a fresh
/// world, the shared public pattern executes in it, and `distinguisher`
/// guesses.
pub fn run_distinguisher_game<W: GameWorld>(
    mut make_world: impl FnMut(u64, bool) -> W,
    distinguisher: &dyn Distinguisher,
    config: &GameConfig,
    seed: u64,
) -> GameResult {
    let mut rng = Xoshiro256::seed_from(seed);
    let mut wins = 0u32;
    for round in 0..config.rounds {
        let with_hidden = rng.next_u64() & 1 == 1;
        let world_seed = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(round as u64 + 1);
        let mut world = make_world(world_seed, with_hidden);
        // Pattern RNG is independent of `b` so both worlds would see the
        // identical public pattern.
        let mut pattern = Xoshiro256::seed_from(world_seed ^ 0x5bf0_3635);
        let mut observations = vec![world.observe()];
        for _ in 0..config.events_per_round {
            let p = pattern.next_range(config.public_blocks.0, config.public_blocks.1);
            world.public_write(p);
            let hidden_roll = pattern.next_f64();
            let h = pattern.next_range(config.hidden_blocks.0, config.hidden_blocks.1);
            if with_hidden && hidden_roll < config.hidden_event_prob {
                world.hidden_write(h);
            }
            observations.push(world.observe());
        }
        let guess = distinguisher.decide(&observations);
        if guess == with_hidden {
            wins += 1;
        }
    }
    let accuracy = wins as f64 / config.rounds as f64;
    GameResult {
        distinguisher: distinguisher.name().to_string(),
        rounds: config.rounds,
        wins,
        accuracy,
        advantage: (accuracy - 0.5).abs(),
        accuracy_ci95: wilson_ci(wins, config.rounds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::DiskSnapshot;

    /// A world where hidden writes visibly set a marker block: trivially
    /// distinguishable.
    struct LeakyWorld {
        hidden_touched: bool,
    }

    /// A world where hidden writes change nothing observable: perfectly
    /// deniable.
    struct PerfectWorld;

    fn marker_observation(marked: bool) -> Observation {
        let byte = if marked { 9u8 } else { 0u8 };
        Observation::disk_only(DiskSnapshot::new(2, 1, vec![byte, byte]))
    }

    impl GameWorld for LeakyWorld {
        fn public_write(&mut self, _blocks: u64) {}
        fn hidden_write(&mut self, _blocks: u64) {
            self.hidden_touched = true;
        }
        fn observe(&self) -> Observation {
            marker_observation(self.hidden_touched)
        }
    }

    impl GameWorld for PerfectWorld {
        fn public_write(&mut self, _blocks: u64) {}
        fn hidden_write(&mut self, _blocks: u64) {}
        fn observe(&self) -> Observation {
            marker_observation(false)
        }
    }

    struct MarkerDistinguisher;

    impl Distinguisher for MarkerDistinguisher {
        fn name(&self) -> &str {
            "marker"
        }
        fn decide(&self, observations: &[Observation]) -> bool {
            observations.iter().any(|o| o.snapshot.block(0)[0] == 9)
        }
    }

    #[test]
    fn leaky_world_yields_high_advantage() {
        let cfg = GameConfig { rounds: 60, ..Default::default() };
        let result = run_distinguisher_game(
            |_seed, _hidden| LeakyWorld { hidden_touched: false },
            &MarkerDistinguisher,
            &cfg,
            1,
        );
        // With hidden_event_prob 0.5 over 12 events, the hidden world marks
        // itself almost surely: accuracy ≈ 1.
        assert!(result.accuracy > 0.9, "{result}");
        assert!(!result.is_blind());
    }

    #[test]
    fn perfect_world_yields_no_advantage() {
        let cfg = GameConfig { rounds: 200, ..Default::default() };
        let result =
            run_distinguisher_game(|_seed, _hidden| PerfectWorld, &MarkerDistinguisher, &cfg, 2);
        // The distinguisher always says "no hidden": wins only the b=0
        // rounds, accuracy ≈ 0.5.
        assert!(result.advantage < 0.1, "{result}");
        assert!(result.is_blind(), "{result}");
    }

    #[test]
    fn wilson_ci_behaviour() {
        let (lo, hi) = wilson_ci(50, 100);
        assert!(lo < 0.5 && hi > 0.5);
        let (lo, hi) = wilson_ci(100, 100);
        assert!(lo > 0.9 && hi > 0.999);
        let (lo, hi) = wilson_ci(0, 0);
        assert_eq!((lo, hi), (0.0, 1.0));
    }

    #[test]
    fn result_display_is_informative() {
        let cfg = GameConfig { rounds: 10, ..Default::default() };
        let result = run_distinguisher_game(|_s, _h| PerfectWorld, &MarkerDistinguisher, &cfg, 3);
        let text = result.to_string();
        assert!(text.contains("marker"));
        assert!(text.contains("advantage"));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GameConfig::default();
        let run = |seed| {
            run_distinguisher_game(
                |_s, _h| LeakyWorld { hidden_touched: false },
                &MarkerDistinguisher,
                &cfg,
                seed,
            )
        };
        assert_eq!(run(7), run(7));
    }
}
