//! The multi-snapshot adversary.
//!
//! §III-A of the paper defines a computationally bounded adversary that can
//! image the device's block storage at multiple points in time ("on-event":
//! border checkpoints, facility gates), read all metadata, know the whole
//! design, and coerce the user for passwords — but never captures the
//! device *while* hidden mode is active and never learns hidden passwords.
//!
//! This crate makes that adversary executable:
//!
//! * [`Observation`] — one checkpoint capture: full disk image, decoded
//!   pool metadata, persistent logs.
//! * [`Distinguisher`] — forensic strategies that, given a sequence of
//!   observations, vote on whether hidden data exists. The provided
//!   implementations are exactly the attacks the paper defends against:
//!   free-space differencing (§IV-A, breaks the static hidden-volume
//!   schemes), dummy-budget accounting (§IV-B's residual leak), physical
//!   run-length analysis (breaks sequential allocation), and the §IV-D
//!   side-channel grep.
//! * [`run_distinguisher_game`] — the §III-C multi-snapshot security game
//!   run empirically: paired worlds with and without hidden activity,
//!   identical public patterns, on-event snapshots, and an advantage
//!   estimate with a Wilson confidence interval.

#![forbid(unsafe_code)]

mod distinguisher;
mod game;
mod observation;

pub use distinguisher::{
    ChangedFreeSpaceDistinguisher, Distinguisher, DummyBudgetDistinguisher,
    EntropyAnomalyDistinguisher, SequentialRunDistinguisher, SideChannelDistinguisher,
};
pub use game::{run_distinguisher_game, GameConfig, GameResult, GameWorld};
pub use observation::Observation;
