//! Forensic distinguishers: the concrete attacks of the paper.

use crate::observation::Observation;
use std::collections::HashSet;

/// A forensic strategy over a time-ordered sequence of observations.
pub trait Distinguisher {
    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// `true` if the strategy believes hidden data exists on the device.
    fn decide(&self, observations: &[Observation]) -> bool;
}

/// The classic multi-snapshot attack (§I, §IV-A): diff consecutive
/// snapshots and flag any change in space not accounted to the *public*
/// volume. Breaks every static hidden-volume scheme (Mobiflage, MobiHydra,
/// MobiPluto), because their "free" randomness must never change — but is
/// neutralised by MobiCeal, whose dummy writes change non-public space in
/// both worlds.
#[derive(Debug, Clone)]
pub struct ChangedFreeSpaceDistinguisher {
    /// The volume id the coerced user admits to (V1).
    pub public_volume: u32,
    /// Where the pool's data region starts on the raw disk (metadata
    /// mappings are data-region-relative).
    pub data_region_start: u64,
    /// Length of the data region in blocks.
    pub data_region_blocks: u64,
}

impl ChangedFreeSpaceDistinguisher {
    fn unaccounted_changes(&self, earlier: &Observation, later: &Observation) -> usize {
        let public: HashSet<u64> = later
            .volume_physical_blocks(self.public_volume)
            .iter()
            .map(|p| p + self.data_region_start)
            .collect();
        earlier
            .changed_blocks(later)
            .into_iter()
            .filter(|&b| {
                b >= self.data_region_start && b < self.data_region_start + self.data_region_blocks
            })
            .filter(|b| !public.contains(b))
            .count()
    }
}

impl Distinguisher for ChangedFreeSpaceDistinguisher {
    fn name(&self) -> &str {
        "changed-free-space"
    }

    fn decide(&self, observations: &[Observation]) -> bool {
        observations.windows(2).any(|w| self.unaccounted_changes(&w[0], &w[1]) > 0)
    }
}

/// Dummy-budget accounting (§IV-B's residual leak): the adversary knows the
/// design (λ, x) and bounds how much non-public growth the dummy mechanism
/// could plausibly produce for the observed public growth. Exceeding the
/// bound — e.g. a large hidden file stored without comparable public
/// traffic — is flagged. The paper's mitigation is behavioural: "store a
/// file with approximately equal size in the public volume after storing a
/// large file in the hidden volume".
#[derive(Debug, Clone)]
pub struct DummyBudgetDistinguisher {
    /// The public volume id.
    pub public_volume: u32,
    /// The design's λ (known to the adversary).
    pub lambda: f64,
    /// How many standard deviations above the worst-case mean to tolerate
    /// before flagging (higher = fewer false positives).
    pub safety_sigmas: f64,
}

impl DummyBudgetDistinguisher {
    fn budget(&self, public_growth: u64) -> f64 {
        // Burst size is ceil(Exp(λ)) ~ Geometric(p = 1 - e^{-λ}) on 1,2,…
        let p = 1.0 - (-self.lambda).exp();
        let mean_burst = 1.0 / p;
        let var_burst = (1.0 - p) / (p * p);
        // Trigger probability is secret but bounded by 1/2 (rand ∈ [1, 2x]).
        let q = 0.5;
        let g = public_growth as f64;
        let mean = g * q * mean_burst;
        let var = g * (q * var_burst + q * (1.0 - q) * mean_burst * mean_burst);
        mean + self.safety_sigmas * var.sqrt() + 4.0
    }
}

impl Distinguisher for DummyBudgetDistinguisher {
    fn name(&self) -> &str {
        "dummy-budget"
    }

    fn decide(&self, observations: &[Observation]) -> bool {
        for w in observations.windows(2) {
            let ids = w[1].volume_ids();
            if ids.is_empty() {
                continue;
            }
            let gp = w[1]
                .mapped_blocks(self.public_volume)
                .saturating_sub(w[0].mapped_blocks(self.public_volume));
            let gn: u64 = ids
                .iter()
                .filter(|&&id| id != self.public_volume)
                .map(|&id| w[1].mapped_blocks(id).saturating_sub(w[0].mapped_blocks(id)))
                .sum();
            if (gn as f64) > self.budget(gp) {
                return true;
            }
        }
        false
    }
}

/// Physical run-length analysis (§IV-B's motivation for random allocation):
/// under sequential allocation a burst of hidden writes forms a long run of
/// physically consecutive new blocks outside the public volume, which no
/// bounded dummy burst can explain. Random allocation leaves only short
/// accidental runs.
#[derive(Debug, Clone)]
pub struct SequentialRunDistinguisher {
    /// The public volume id.
    pub public_volume: u32,
    /// Data-region offset on the raw disk.
    pub data_region_start: u64,
    /// Runs at or above this length are flagged.
    pub min_run: u64,
}

impl Distinguisher for SequentialRunDistinguisher {
    fn name(&self) -> &str {
        "sequential-run"
    }

    fn decide(&self, observations: &[Observation]) -> bool {
        for w in observations.windows(2) {
            let public: HashSet<u64> = w[1]
                .volume_physical_blocks(self.public_volume)
                .iter()
                .map(|p| p + self.data_region_start)
                .collect();
            let mut changed: Vec<u64> = w[0]
                .changed_blocks(&w[1])
                .into_iter()
                .filter(|&b| b >= self.data_region_start && !public.contains(&b))
                .collect();
            changed.sort_unstable();
            let mut run = 1u64;
            for pair in changed.windows(2) {
                if pair[1] == pair[0] + 1 {
                    run += 1;
                    if run >= self.min_run {
                        return true;
                    }
                } else {
                    run = 1;
                }
            }
        }
        false
    }
}

/// Entropy anomaly scan: flags *low-entropy* content appearing in blocks
/// not accounted to the public volume. A correct PDE writes only
/// ciphertext/noise outside the public mapping; plaintext structure leaking
/// into "free" space (a buggy implementation, an unencrypted journal, a
/// swap spill) is immediate evidence of concealed activity. All systems in
/// this workspace pass; the distinguisher exists to validate that property
/// and to catch regressions.
#[derive(Debug, Clone)]
pub struct EntropyAnomalyDistinguisher {
    /// The admitted public volume.
    pub public_volume: u32,
    /// Data-region offset on the raw disk.
    pub data_region_start: u64,
    /// Blocks whose Shannon entropy falls below this (bits/byte) are
    /// anomalous. Ciphertext measures ≈ 7.97 on 4 KiB blocks.
    pub entropy_floor: f64,
}

impl Default for EntropyAnomalyDistinguisher {
    fn default() -> Self {
        EntropyAnomalyDistinguisher { public_volume: 1, data_region_start: 0, entropy_floor: 7.0 }
    }
}

impl Distinguisher for EntropyAnomalyDistinguisher {
    fn name(&self) -> &str {
        "entropy-anomaly"
    }

    fn decide(&self, observations: &[Observation]) -> bool {
        for w in observations.windows(2) {
            let public: HashSet<u64> = w[1]
                .volume_physical_blocks(self.public_volume)
                .iter()
                .map(|p| p + self.data_region_start)
                .collect();
            for b in w[0].changed_blocks(&w[1]) {
                if b < self.data_region_start || public.contains(&b) {
                    continue;
                }
                if w[1].snapshot.block_entropy(b) < self.entropy_floor {
                    return true;
                }
            }
        }
        false
    }
}

/// The §IV-D side channel: grep persistent public storage for traces of
/// hidden-mode activity. Defeats any design that shares logs/caches between
/// modes (HIVE, DEFY per Czeskis et al.); MobiCeal's tmpfs isolation leaves
/// nothing to find.
#[derive(Debug, Clone)]
pub struct SideChannelDistinguisher {
    /// Substrings whose appearance in public logs betrays hidden activity.
    pub needles: Vec<String>,
}

impl Default for SideChannelDistinguisher {
    fn default() -> Self {
        SideChannelDistinguisher { needles: vec!["hidden".into(), "secret".into()] }
    }
}

impl Distinguisher for SideChannelDistinguisher {
    fn name(&self) -> &str {
        "side-channel"
    }

    fn decide(&self, observations: &[Observation]) -> bool {
        observations.iter().any(|o| {
            o.logs.iter().any(|line| self.needles.iter().any(|n| line.contains(n.as_str())))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobiceal_blockdev::DiskSnapshot;
    use mobiceal_thinp::{Bitmap, MetadataView, VolumeMeta};
    use std::collections::BTreeMap;

    fn obs(blocks: &[[u8; 2]], mappings: &[(u32, Vec<(u64, u64)>)]) -> Observation {
        let data: Vec<u8> = blocks.iter().flatten().copied().collect();
        let snapshot = DiskSnapshot::new(2, blocks.len() as u64, data);
        let mut volumes = BTreeMap::new();
        for (id, maps) in mappings {
            volumes.insert(
                *id,
                VolumeMeta {
                    id: *id,
                    virtual_blocks: 64,
                    mappings: maps.iter().copied().collect(),
                },
            );
        }
        Observation {
            snapshot,
            metadata: Some(MetadataView {
                transaction_id: 0,
                bitmap: Bitmap::new(blocks.len() as u64),
                volumes,
            }),
            logs: Vec::new(),
        }
    }

    #[test]
    fn changed_free_space_flags_unaccounted_change() {
        let d = ChangedFreeSpaceDistinguisher {
            public_volume: 1,
            data_region_start: 0,
            data_region_blocks: 4,
        };
        // Block 2 changes but only block 0 is public-mapped.
        let before = obs(&[[1, 1], [0, 0], [5, 5], [0, 0]], &[(1, vec![(0, 0)])]);
        let after = obs(&[[1, 1], [0, 0], [9, 9], [0, 0]], &[(1, vec![(0, 0)])]);
        assert!(d.decide(&[before, after]));
    }

    #[test]
    fn changed_free_space_accepts_public_only_change() {
        let d = ChangedFreeSpaceDistinguisher {
            public_volume: 1,
            data_region_start: 0,
            data_region_blocks: 4,
        };
        let before = obs(&[[1, 1], [0, 0], [5, 5], [0, 0]], &[(1, vec![(0, 0)])]);
        let after = obs(&[[2, 2], [0, 0], [5, 5], [0, 0]], &[(1, vec![(0, 0)])]);
        assert!(!d.decide(&[before, after]));
    }

    #[test]
    fn dummy_budget_tolerates_plausible_growth_and_flags_excess() {
        let d = DummyBudgetDistinguisher { public_volume: 1, lambda: 1.0, safety_sigmas: 4.0 };
        let zeros = [[0u8; 2]; 4];
        // 100 public allocations, 60 non-public: within budget (~0.79*100+4σ).
        let before = obs(&zeros, &[(1, vec![]), (2, vec![])]);
        let mid = obs(
            &zeros,
            &[
                (1, (0..100).map(|i| (i, i)).collect::<Vec<_>>()),
                (2, (0..60).map(|i| (i, i)).collect::<Vec<_>>()),
            ],
        );
        assert!(!d.decide(&[before.clone(), mid]));
        // 10 public allocations but 200 non-public: far beyond any budget.
        let excess = obs(
            &zeros,
            &[
                (1, (0..10).map(|i| (i, i)).collect::<Vec<_>>()),
                (2, (0..200).map(|i| (i, i)).collect::<Vec<_>>()),
            ],
        );
        assert!(d.decide(&[before, excess]));
    }

    #[test]
    fn sequential_run_detects_long_runs_only() {
        let d = SequentialRunDistinguisher { public_volume: 1, data_region_start: 0, min_run: 3 };
        let mk = |vals: [u8; 6]| {
            obs(
                &[
                    [vals[0]; 2],
                    [vals[1]; 2],
                    [vals[2]; 2],
                    [vals[3]; 2],
                    [vals[4]; 2],
                    [vals[5]; 2],
                ],
                &[(1, vec![])],
            )
        };
        let before = mk([0, 0, 0, 0, 0, 0]);
        let long_run = mk([0, 9, 9, 9, 0, 0]); // blocks 1,2,3 changed: run of 3
        assert!(d.decide(&[before.clone(), long_run]));
        let scattered = mk([9, 0, 9, 0, 9, 0]); // no run of 3
        assert!(!d.decide(&[before, scattered]));
    }

    #[test]
    fn entropy_anomaly_flags_plaintext_in_free_space() {
        let d = EntropyAnomalyDistinguisher {
            public_volume: 1,
            data_region_start: 0,
            entropy_floor: 5.0,
        };
        // 256-byte blocks; block 1 is non-public.
        let ramp: Vec<u8> = (0..=255).collect();
        let make = |b1: &[u8]| {
            let mut data = ramp.clone();
            data.extend_from_slice(b1);
            let snapshot = DiskSnapshot::new(256, 2, data);
            let mut volumes = BTreeMap::new();
            volumes.insert(
                1,
                VolumeMeta { id: 1, virtual_blocks: 4, mappings: mobiceal_thinp::ExtentMap::new() },
            );
            Observation {
                snapshot,
                metadata: Some(MetadataView { transaction_id: 0, bitmap: Bitmap::new(2), volumes }),
                logs: Vec::new(),
            }
        };
        let before = make(&[0u8; 256]);
        // Plaintext (constant bytes) appears in non-public space: flagged.
        let leaky = make(&[7u8; 256]);
        assert!(d.decide(&[before.clone(), leaky]));
        // High-entropy noise appears instead: fine.
        let noise: Vec<u8> = (0..256).map(|i| (i * 167 % 251) as u8).collect();
        let clean = make(&noise);
        assert!(!d.decide(&[before, clean]));
    }

    #[test]
    fn side_channel_greps_logs() {
        let d = SideChannelDistinguisher::default();
        let mut clean = Observation::disk_only(DiskSnapshot::new(2, 1, vec![0, 0]));
        clean.logs = vec!["vold: mounted /data".into()];
        assert!(!d.decide(&[clean.clone()]));
        let mut leaky = clean.clone();
        leaky.logs.push("vold: mounted hidden volume V4".into());
        assert!(d.decide(&[clean, leaky]));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            ChangedFreeSpaceDistinguisher {
                public_volume: 1,
                data_region_start: 0,
                data_region_blocks: 1
            }
            .name(),
            "changed-free-space"
        );
        assert_eq!(
            DummyBudgetDistinguisher { public_volume: 1, lambda: 1.0, safety_sigmas: 3.0 }.name(),
            "dummy-budget"
        );
    }
}
